let path_weight g path =
  let rec loop = function
    | [] | [ _ ] -> 0.
    | u :: (v :: _ as rest) -> (
        match Digraph.weight g u v with
        | Some w -> w +. loop rest
        | None -> invalid_arg "Yen.path_weight: missing edge")
  in
  loop path

(* Same sum, same association order (w_0 +. (w_1 +. ...)), on the packed
   representation below. *)
let path_weight_arr g p =
  let m = Array.length p in
  let rec go i =
    if i >= m - 1 then 0.
    else
      match Digraph.weight g p.(i) p.(i + 1) with
      | Some w -> w +. go (i + 1)
      | None -> invalid_arg "Yen.path_weight: missing edge"
  in
  go 0

(* Paths are int arrays internally: the spur loop needs random access at
   the spur index, and the root-prefix comparison against accepted paths
   is then O(1) per step instead of the former List.nth / take / (=) on
   growing prefixes. [known] holds every candidate ever pushed plus the
   accepted paths (pushed candidates are never un-known: popping moves
   them to [accepted], which the old list-based dedup also consulted), so
   one membership test replaces the seen-table check + List.mem scan. *)
let k_shortest g ~src ~dst ~k =
  if k <= 0 then []
  else
    match Shortest_path.shortest_path g src dst with
    | None -> []
    | Some first ->
        let first = Array.of_list first in
        let n = Digraph.n_vertices g in
        let accepted = ref [ first ] (* newest first *)
        and n_accepted = ref 1 in
        let candidates = Heap.create () in
        let known = Hashtbl.create 16 in
        Hashtbl.add known first ();
        let blocked_vertices = Array.make n false in
        let ws = Shortest_path.local_workspace g in
        let continue = ref (!n_accepted < k) in
        while !continue do
          let prev = List.hd !accepted in
          let prev_len = Array.length prev in
          (* Accepted paths still sharing prev's root prefix [0..i]; the
             filter refines incrementally as i grows, so each path is
             compared against one vertex per step, not a whole prefix. *)
          let sharing = ref !accepted in
          (* Spur from every vertex of the previous path except the last. *)
          for i = 0 to prev_len - 2 do
            (* Root vertices before the spur node are removed. *)
            if i > 0 then blocked_vertices.(prev.(i - 1)) <- true;
            sharing :=
              List.filter (fun p -> Array.length p > i && p.(i) = prev.(i)) !sharing;
            (* Edges used by accepted paths sharing this root are removed;
               at most one per accepted path, so packed-int list membership
               beats building a hash table per spur. *)
            let blocked_edges =
              List.filter_map
                (fun p ->
                  if Array.length p > i + 1 then Some ((p.(i) * n) + p.(i + 1))
                  else None)
                !sharing
            in
            let edge_blocked u v = List.mem ((u * n) + v) blocked_edges in
            let spur = prev.(i) in
            let tree =
              Shortest_path.dijkstra_ws ws ~blocked_vertices ~edge_blocked
                ~target:dst spur
            in
            match Shortest_path.path_to tree dst with
            | None -> ()
            | Some spur_path ->
                (* root (minus spur) @ spur path; spur_path starts at spur. *)
                let total =
                  Array.append (Array.sub prev 0 i) (Array.of_list spur_path)
                in
                if not (Hashtbl.mem known total) then begin
                  Hashtbl.add known total ();
                  Heap.push candidates (path_weight_arr g total) total
                end
          done;
          for j = 0 to prev_len - 3 do
            blocked_vertices.(prev.(j)) <- false
          done;
          (match Heap.pop_min candidates with
          | None -> continue := false
          | Some (_, best) ->
              accepted := best :: !accepted;
              incr n_accepted;
              if !n_accepted >= k then continue := false)
        done;
        List.rev_map Array.to_list !accepted

(* All-pairs enumeration, one task per (src, dst) pair. Each call of
   [k_shortest] is self-contained apart from the domain-local Dijkstra
   workspace, so tasks are pure per element and the pool's input-order
   join makes the batch bit-for-bit equal to the sequential map. *)
let k_shortest_pairs ?pool g ~pairs ~k =
  let one (src, dst) = k_shortest g ~src ~dst ~k in
  match pool with
  | Some p when Sdn_parallel.Pool.domains p > 1 -> Sdn_parallel.Pool.map_list p one pairs
  | _ -> List.map one pairs
