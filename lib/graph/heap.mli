(** Mutable binary min-heap keyed by floats, used by Dijkstra and Yen. *)

type 'a t

val create : unit -> 'a t

val clear : 'a t -> unit
(** Empty the heap in place, keeping its capacity but releasing every
    held value (no popped or pending payload stays reachable). *)

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** Insert a value with the given key. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest key. *)

val peek_min : 'a t -> (float * 'a) option
