module Hs = Hspace.Hs

type severity = Error | Warning | Info

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type t = {
  check : string;
  severity : severity;
  switch : int option;
  table : int option;
  entries : int list;
  witness : Hs.t;
  message : string;
}

let make ~check ~severity ?switch ?table ?(entries = []) ~witness message =
  { check; severity; switch; table; entries; witness; message }

let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match String.compare a.check b.check with
      | 0 -> Stdlib.compare (a.switch, a.table, a.entries) (b.switch, b.table, b.entries)
      | c -> c)
  | c -> c

let pp fmt d =
  Format.fprintf fmt "%s[%s]" (severity_to_string d.severity) d.check;
  (match d.switch with
  | Some sw -> (
      Format.fprintf fmt " sw%d" sw;
      match d.table with Some tb -> Format.fprintf fmt "/t%d" tb | None -> ())
  | None -> ());
  Format.fprintf fmt ": %s" d.message;
  if not (Hs.is_empty d.witness) then Format.fprintf fmt " [witness %a]" Hs.pp d.witness

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled: the toolchain carries no JSON library). *)

let json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json buf d =
  Buffer.add_string buf "{\"check\":";
  json_string buf d.check;
  Buffer.add_string buf ",\"severity\":";
  json_string buf (severity_to_string d.severity);
  (match d.switch with
  | Some sw -> Buffer.add_string buf (Printf.sprintf ",\"switch\":%d" sw)
  | None -> ());
  (match d.table with
  | Some tb -> Buffer.add_string buf (Printf.sprintf ",\"table\":%d" tb)
  | None -> ());
  Buffer.add_string buf ",\"entries\":[";
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int id))
    d.entries;
  Buffer.add_string buf "],\"witness\":[";
  List.iteri
    (fun i cube ->
      if i > 0 then Buffer.add_char buf ',';
      json_string buf (Hspace.Cube.to_string cube))
    (Hs.cubes d.witness);
  Buffer.add_string buf "],\"message\":";
  json_string buf d.message;
  Buffer.add_char buf '}'
