(** The lint engine: runs registered {!Passes} over a network policy
    and collects diagnostics plus per-pass wall-clock timings.

    This is the programmatic entry point behind [sdnprobe lint] and the
    {!Rulegraph.Static_checks} compatibility shim. *)

type report = {
  diagnostics : Diagnostic.t list;  (** in pass/emission order *)
  timings : (string * float) list;  (** (pass id, seconds) per executed pass *)
  skipped : string list;  (** passes not run (e.g. coverage without a plan) *)
}

exception Unknown_pass of string
(** Raised by {!run} when [only] names no registered pass. *)

val run : ?only:string list -> ?probes:int list list -> Openflow.Network.t -> report
(** Run the registry (or the [only] subset, by check id or ["Lnnn"]
    prefix) over the policy. [probes] — planned probe paths as
    entry-id sequences — enables the L009 coverage audit; without it
    that pass is reported in [skipped]. *)

val count : report -> Diagnostic.severity -> int

val sorted : report -> Diagnostic.t list
(** Diagnostics in display order: severity, then check id, then
    location. *)

val worst : report -> Diagnostic.severity option

type fail_on = Fail_never | Fail_error | Fail_warning

val exit_code : fail_on:fail_on -> report -> int
(** Severity-based process exit code: [2] when an [Error] diagnostic is
    present (unless [Fail_never]), [1] when the worst finding is a
    [Warning] and [fail_on] is [Fail_warning], [0] otherwise. *)

val findings_by_pass : report -> (string * int * float) list
(** [(pass id, finding count, seconds)] per executed pass. *)

val pp_text : Format.formatter -> report -> unit
(** Sorted diagnostics, a per-pass findings/timing table, and a
    severity summary line. *)

val to_json : report -> string
(** The whole report as one JSON object:
    [{"diagnostics": [...], "summary": {...}, "timings": {...},
    "skipped": [...]}]. *)
