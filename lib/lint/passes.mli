(** The lint engine's analysis passes.

    Each pass is a pure function from an analysis context to a list of
    {!Diagnostic.t}, registered under a stable check id. The context
    pre-computes what every pass over a policy needs — the entry array
    and each entry's input/output header spaces (§V-A's [r.in]/[r.out])
    — so passes share one O(rules) space computation.

    The catalog (ids, severities, witness semantics, examples) is
    documented in [docs/LINT.md]. *)

type ctx

val make_ctx : ?probes:int list list -> Openflow.Network.t -> ctx
(** [probes] are planned probe paths as flow-entry-id sequences (the
    [rules] field of {!Core.Probe.t} / a cover path); they feed the
    probe-plan coverage audit, which is skipped when absent. *)

val network : ctx -> Openflow.Network.t

val probes : ctx -> int list list option

type t = {
  id : string;  (** stable check id, e.g. ["L001-forwarding-loop"] *)
  severity : Diagnostic.severity;  (** headline severity of its findings *)
  doc : string;  (** one-line description *)
  needs_probes : bool;  (** pass only runs when the ctx has a probe plan *)
  run : ctx -> Diagnostic.t list;
}

val all : t list
(** Registry in check-id order. *)

val find : string -> t option
(** Lookup by full id or by its ["Lnnn"] prefix, case-insensitive. *)
