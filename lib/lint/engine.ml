module D = Diagnostic

type report = {
  diagnostics : D.t list;
  timings : (string * float) list;
  skipped : string list;
}

let resolve_passes only =
  match only with
  | None -> Ok Passes.all
  | Some keys ->
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | key :: rest -> (
            match Passes.find key with
            | Some p -> resolve (if List.memq p acc then acc else p :: acc) rest
            | None -> Error key)
      in
      resolve [] keys

exception Unknown_pass of string

let run ?only ?probes net =
  let passes =
    match resolve_passes only with
    | Ok ps -> ps
    | Error key -> raise (Unknown_pass key)
  in
  let ctx = Passes.make_ctx ?probes net in
  let timer = Metrics.Timing.create () in
  let skipped = ref [] in
  let diagnostics =
    List.concat_map
      (fun (p : Passes.t) ->
        if p.needs_probes && Passes.probes ctx = None then begin
          skipped := p.id :: !skipped;
          []
        end
        else Metrics.Timing.time timer p.id (fun () -> p.run ctx))
      passes
  in
  { diagnostics; timings = Metrics.Timing.timings timer; skipped = List.rev !skipped }

let count report severity =
  List.length (List.filter (fun (d : D.t) -> d.severity = severity) report.diagnostics)

let sorted report = List.stable_sort D.compare report.diagnostics

let worst report =
  List.fold_left
    (fun acc (d : D.t) ->
      match acc with
      | Some s when D.severity_rank s <= D.severity_rank d.severity -> acc
      | _ -> Some d.severity)
    None report.diagnostics

type fail_on = Fail_never | Fail_error | Fail_warning

let exit_code ~fail_on report =
  match (fail_on, worst report) with
  | Fail_never, _ | _, None -> 0
  | (Fail_error | Fail_warning), Some D.Error -> 2
  | Fail_warning, Some D.Warning -> 1
  | _ -> 0

(* ------------------------------------------------------------------ *)
(* Rendering *)

let findings_by_pass report =
  List.map
    (fun (id, seconds) ->
      let n =
        List.length (List.filter (fun (d : D.t) -> d.check = id) report.diagnostics)
      in
      (id, n, seconds))
    report.timings

let pp_text fmt report =
  List.iter (fun d -> Format.fprintf fmt "%a@." D.pp d) (sorted report);
  let table = Metrics.Table.create [ "pass"; "findings"; "time" ] in
  List.iter
    (fun (id, n, seconds) ->
      Metrics.Table.add_row table
        [
          id;
          Metrics.Table.cell_i n;
          (if seconds >= 1. then Printf.sprintf "%.2f s" seconds
           else if seconds >= 1e-3 then Printf.sprintf "%.2f ms" (seconds *. 1e3)
           else Printf.sprintf "%.0f us" (seconds *. 1e6));
        ])
    (findings_by_pass report);
  Format.fprintf fmt "%s@." (Metrics.Table.render table);
  List.iter
    (fun id -> Format.fprintf fmt "pass %s skipped (no probe plan)@." id)
    report.skipped;
  Format.fprintf fmt "%d error(s), %d warning(s), %d info(s)@."
    (count report D.Error) (count report D.Warning) (count report D.Info)

let to_json report =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      D.to_json buf d)
    (sorted report);
  Buffer.add_string buf "],\"summary\":{";
  Buffer.add_string buf
    (Printf.sprintf "\"error\":%d,\"warning\":%d,\"info\":%d" (count report D.Error)
       (count report D.Warning) (count report D.Info));
  Buffer.add_string buf "},\"timings\":{";
  List.iteri
    (fun i (id, seconds) ->
      if i > 0 then Buffer.add_char buf ',';
      D.json_string buf id;
      Buffer.add_string buf (Printf.sprintf ":%.6f" seconds))
    report.timings;
  Buffer.add_string buf "},\"skipped\":[";
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char buf ',';
      D.json_string buf id)
    report.skipped;
  Buffer.add_string buf "]}";
  Buffer.contents buf
