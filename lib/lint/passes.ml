module Hs = Hspace.Hs
module Cube = Hspace.Cube
module FE = Openflow.Flow_entry
module Flow_table = Openflow.Flow_table
module Network = Openflow.Network
module Topology = Openflow.Topology
module D = Diagnostic

module Plumbing = Verify.Plumbing

type ctx = {
  net : Network.t;
  entries : FE.t array;
  index_of : (int, int) Hashtbl.t; (* entry id -> array index *)
  inputs : Hs.t array;
  outputs : Hs.t array;
  probes : int list list option;
  plumbing : Plumbing.t Lazy.t;
      (* the verifier's reachability substrate; L001/L002 read their
         facts off it so lint and [sdnprobe verify] cannot disagree *)
}

let make_ctx ?probes net =
  let entries = Array.of_list (Network.all_entries net) in
  let index_of = Hashtbl.create (Array.length entries) in
  Array.iteri (fun i (e : FE.t) -> Hashtbl.add index_of e.id i) entries;
  {
    net;
    entries;
    index_of;
    inputs = Array.map (Network.input_space net) entries;
    outputs = Array.map (Network.output_space net) entries;
    probes;
    plumbing = lazy (Plumbing.build net);
  }

let network ctx = ctx.net

let probes ctx = ctx.probes

let table_entries ctx ~switch ~table =
  Flow_table.entries (Network.table ctx.net ~switch ~table)

(* ------------------------------------------------------------------ *)
(* L001: forwarding loops.

   Delegates to the verifier's plumbing graph (the same construction
   this pass historically built inline: base rule-graph edges kept when
   the hand-off space is non-empty, in the same iteration order, so the
   reported cycle and witness are unchanged — test_lint pins this).
   The witness is the header space at the loop head that survives a
   full traversal of the cycle; when per-edge compatibility does not
   compose into a global round trip, the first edge's hand-off space is
   the witness instead — the cycle still violates SDNProbe's DAG
   precondition either way. *)

let pass_forwarding_loop ctx =
  let plumbing = Lazy.force ctx.plumbing in
  match Plumbing.find_cycle plumbing with
  | None -> []
  | Some cycle ->
      let witness = Plumbing.cycle_witness plumbing cycle in
      let entry v = Plumbing.vertex_entry plumbing v in
      let ids = List.map (fun v -> (entry v).FE.id) cycle in
      let switches =
        List.sort_uniq compare (List.map (fun v -> (entry v).FE.switch) cycle)
      in
      [
        D.make ~check:"L001-forwarding-loop" ~severity:D.Error
          ~switch:(List.hd switches) ~entries:ids ~witness
          (Format.asprintf "forwarding loop through entries %a (switches %a)"
             Fmt.(list ~sep:(any " -> ") int)
             ids
             Fmt.(list ~sep:(any ",") int)
             switches);
      ]

(* ------------------------------------------------------------------ *)
(* L002: blackholes — the part of a forwarding rule's output space no
   entry of the next hop's first table matches (traffic silently dies
   on table-miss). Witness: the leaked space. Delegates to the
   verifier's plumbing graph, whose [leaks] computes the exact fold
   this pass historically ran inline (same lookup order, same diff by
   raw match), so witness cube lists are bit-identical. *)

let pass_blackhole ctx =
  Plumbing.leaks (Lazy.force ctx.plumbing)
  |> List.map (fun ((r : FE.t), sw, leaked) ->
         D.make ~check:"L002-blackhole" ~severity:D.Warning ~switch:sw ~table:0
           ~entries:[ r.id ] ~witness:leaked
           (Format.asprintf
              "entry %d (sw%d, prio %d) forwards %a to sw%d, where no entry \
               matches it"
              r.id r.switch r.priority Hs.pp leaked sw))

(* ------------------------------------------------------------------ *)
(* L003: fully-shadowed rules — empty input space: higher-precedence
   rules of the same table cover the whole match. Witness: the match
   itself (every header of it is stolen). *)

let pass_shadowed ctx =
  let acc = ref [] in
  Array.iteri
    (fun i (e : FE.t) ->
      if Hs.is_empty ctx.inputs.(i) then begin
        let shadowers =
          Flow_table.higher_priority_overlaps
            (Network.table ctx.net ~switch:e.switch ~table:e.table)
            e
        in
        let shadower_ids = List.map (fun (q : FE.t) -> q.FE.id) shadowers in
        acc :=
          D.make ~check:"L003-shadowed-rule" ~severity:D.Error ~switch:e.switch
            ~table:e.table
            ~entries:(e.id :: shadower_ids)
            ~witness:(Hs.of_cube e.match_)
            (Format.asprintf
               "entry %d (sw%d, prio %d) can never match: fully shadowed by %a"
               e.id e.switch e.priority
               Fmt.(list ~sep:(any ",") int)
               shadower_ids)
          :: !acc
      end)
    ctx.entries;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* L004: partially-shadowed rules — a non-empty strict subset of the
   match survives higher-precedence rules. Normal in priority-based
   tables (aggregate/specific families), so informational. Witness:
   the shadowed portion. *)

let pass_partial_shadow ctx =
  let acc = ref [] in
  Array.iteri
    (fun i (e : FE.t) ->
      if not (Hs.is_empty ctx.inputs.(i)) then begin
        let stolen = Hs.diff (Hs.of_cube e.match_) ctx.inputs.(i) in
        if not (Hs.is_empty stolen) then
          acc :=
            D.make ~check:"L004-partial-shadow" ~severity:D.Info ~switch:e.switch
              ~table:e.table ~entries:[ e.id ] ~witness:stolen
              (Format.asprintf
                 "entry %d (sw%d, prio %d) loses %a to higher-precedence rules"
                 e.id e.switch e.priority Hs.pp stolen)
            :: !acc
      end)
    ctx.entries;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* L005: equal-priority overlap ambiguity. OpenFlow leaves the winner
   among equal-priority matching entries undefined; the reproduction's
   Flow_table papers over this with a lowest-id tiebreak. Report pairs
   whose undefined region is actually reachable (not already resolved
   by genuinely higher priorities) and whose behaviors differ — for
   observationally identical rules the ambiguity is harmless. Witness:
   the headers the two rules compete for. *)

let same_behavior (a : FE.t) (b : FE.t) =
  a.action = b.action && (a.action = FE.Drop || Cube.equal a.set_field b.set_field)

let pass_priority_ambiguity ctx =
  let acc = ref [] in
  let n = Array.length ctx.entries in
  for i = 0 to n - 1 do
    let a = ctx.entries.(i) in
    for j = i + 1 to n - 1 do
      let b = ctx.entries.(j) in
      if
        a.FE.switch = b.FE.switch && a.FE.table = b.FE.table
        && a.FE.priority = b.FE.priority
        && (not (Cube.disjoint a.FE.match_ b.FE.match_))
        && not (same_behavior a b)
      then begin
        (* The winner of the id tiebreak is the lower id; its input
           space is the overlap net of genuinely higher priorities. *)
        let low, high = if a.FE.id < b.FE.id then (i, j) else (j, i) in
        let contested =
          Hs.inter_cube ctx.inputs.(low) ctx.entries.(high).FE.match_
        in
        if not (Hs.is_empty contested) then
          acc :=
            D.make ~check:"L005-priority-ambiguity" ~severity:D.Warning
              ~switch:a.FE.switch ~table:a.FE.table
              ~entries:[ ctx.entries.(low).FE.id; ctx.entries.(high).FE.id ]
              ~witness:contested
              (Format.asprintf
                 "entries %d and %d (sw%d, prio %d) overlap on %a with \
                  different behavior; OpenFlow leaves the winner undefined \
                  (the emulator breaks the tie by lower id)"
                 ctx.entries.(low).FE.id ctx.entries.(high).FE.id a.FE.switch
                 a.FE.priority Hs.pp contested)
            :: !acc
      end
    done
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* L006: dead or unreachable switches. Three shapes: a switch with no
   links (isolated — nothing can reach or leave it), a linked switch
   with no flow entries (every arriving packet dies on table-miss), and
   a switch no neighbour policy forwards into (only locally injected
   packets can exercise its rules — informational). *)

let pass_dead_switch ctx =
  let topo = Network.topology ctx.net in
  let len = Network.header_len ctx.net in
  let fed = Array.make (Network.n_switches ctx.net) false in
  Array.iteri
    (fun _ (r : FE.t) ->
      match Network.next_switch ctx.net r with
      | Some sw -> fed.(sw) <- true
      | None -> ())
    ctx.entries;
  let acc = ref [] in
  for sw = 0 to Network.n_switches ctx.net - 1 do
    let has_links = Topology.ports_of topo sw <> [] in
    let has_entries = Network.switch_entries ctx.net sw <> [] in
    if not has_links then
      acc :=
        D.make ~check:"L006-dead-switch" ~severity:D.Warning ~switch:sw
          ~witness:(Hs.empty len)
          (Format.asprintf "sw%d is isolated: no links attached" sw)
        :: !acc
    else if not has_entries then
      acc :=
        D.make ~check:"L006-dead-switch" ~severity:D.Warning ~switch:sw
          ~witness:(Hs.full len)
          (Format.asprintf
             "sw%d has no flow entries: every packet reaching it dies on \
              table-miss" sw)
        :: !acc
    else if not fed.(sw) then
      acc :=
        D.make ~check:"L006-dead-switch" ~severity:D.Info ~switch:sw
          ~witness:(Hs.empty len)
          (Format.asprintf
             "no policy forwards traffic into sw%d: only locally injected \
              packets can exercise its %d entries" sw
             (List.length (Network.switch_entries ctx.net sw)))
        :: !acc
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* L007: dead ports — a linked port no rule of its switch ever outputs
   onto. Unused capacity, or a hint the policy misses a path. Witness:
   the (empty) set of headers the switch sends out of the port. *)

let pass_dead_port ctx =
  let topo = Network.topology ctx.net in
  let len = Network.header_len ctx.net in
  let used = Hashtbl.create 64 in
  Array.iter
    (fun (r : FE.t) ->
      match r.action with
      | FE.Output p -> Hashtbl.replace used (r.switch, p) ()
      | FE.Drop | FE.Goto_table _ -> ())
    ctx.entries;
  let acc = ref [] in
  for sw = 0 to Network.n_switches ctx.net - 1 do
    List.iter
      (fun port ->
        if not (Hashtbl.mem used (sw, port)) then
          let peer =
            match Topology.peer topo ~sw ~port with
            | Some (psw, pport) -> Format.asprintf " (to sw%d:%d)" psw pport
            | None -> ""
          in
          acc :=
            D.make ~check:"L007-dead-port" ~severity:D.Info ~switch:sw
              ~witness:(Hs.empty len)
              (Format.asprintf "no rule of sw%d outputs onto port %d%s" sw port
                 peer)
            :: !acc)
      (Topology.ports_of topo sw)
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* L008: redundant rules — removable without changing the table's
   forwarding function. A rule is redundant when every header of its
   input space would, in its absence, fall through to rules with the
   same observable behavior (or to the table-miss drop, for Drop
   rules). Witness: the rule's whole input space. *)

let pass_redundant ctx =
  let acc = ref [] in
  for sw = 0 to Network.n_switches ctx.net - 1 do
    for tb = 0 to Network.n_tables ctx.net - 1 do
      let entries = table_entries ctx ~switch:sw ~table:tb in
      let rec scan = function
        | [] -> ()
        | (r : FE.t) :: rest ->
            let i = Hashtbl.find ctx.index_of r.id in
            if not (Hs.is_empty ctx.inputs.(i)) then begin
              (* Fold the rule's input space through the rest of the
                 table in lookup order. *)
              let rec absorb residual = function
                | _ when Hs.is_empty residual -> Some (Hs.empty (Hs.length residual))
                | [] -> if r.action = FE.Drop then Some residual else None
                | (q : FE.t) :: qs ->
                    if Hs.is_empty (Hs.inter_cube residual q.match_) then
                      absorb residual qs
                    else if same_behavior r q then
                      absorb (Hs.diff_cube residual q.match_) qs
                    else None
              in
              match absorb ctx.inputs.(i) rest with
              | Some _ ->
                  acc :=
                    D.make ~check:"L008-redundant-rule" ~severity:D.Info
                      ~switch:sw ~table:tb ~entries:[ r.id ]
                      ~witness:ctx.inputs.(i)
                      (Format.asprintf
                         "entry %d (sw%d, prio %d) is redundant: removing it \
                          leaves the table's behavior unchanged on %a"
                         r.id sw r.priority Hs.pp ctx.inputs.(i))
                    :: !acc
              | None -> ()
            end;
            scan rest
      in
      scan entries
    done
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* L009: probe-plan coverage audit — statically prove every testable
   (non-shadowed) entry is traversed by some planned probe, or name the
   uncovered entries. Witness: the headers that would exercise the
   uncovered entry. *)

let pass_coverage ctx =
  match ctx.probes with
  | None -> []
  | Some probes ->
      (* Delegate to the certification layer's coverage checker so the
         lint audit and `sdnprobe certify` share one implementation and
         cannot disagree on what "covered" means. *)
      List.map
        (fun ((e : FE.t), input) ->
          D.make ~check:"L009-uncovered-rule" ~severity:D.Error
            ~switch:e.switch ~table:e.table ~entries:[ e.id ] ~witness:input
            (Format.asprintf
               "entry %d (sw%d, prio %d) is testable but no planned probe \
                traverses it" e.id e.switch e.priority))
        (Cert.Replay.uncovered ctx.net ~probes)

(* ------------------------------------------------------------------ *)
(* Registry *)

type t = {
  id : string;
  severity : Diagnostic.severity;
  doc : string;
  needs_probes : bool;
  run : ctx -> Diagnostic.t list;
}

let all =
  [
    {
      id = "L001-forwarding-loop";
      severity = D.Error;
      doc = "cycle of flow entries some header can traverse";
      needs_probes = false;
      run = pass_forwarding_loop;
    };
    {
      id = "L002-blackhole";
      severity = D.Warning;
      doc = "forwarded header space the next hop silently drops";
      needs_probes = false;
      run = pass_blackhole;
    };
    {
      id = "L003-shadowed-rule";
      severity = D.Error;
      doc = "entry fully covered by higher-precedence rules";
      needs_probes = false;
      run = pass_shadowed;
    };
    {
      id = "L004-partial-shadow";
      severity = D.Info;
      doc = "entry losing part of its match to higher-precedence rules";
      needs_probes = false;
      run = pass_partial_shadow;
    };
    {
      id = "L005-priority-ambiguity";
      severity = D.Warning;
      doc = "equal-priority overlap with different behavior (undefined in OpenFlow)";
      needs_probes = false;
      run = pass_priority_ambiguity;
    };
    {
      id = "L006-dead-switch";
      severity = D.Warning;
      doc = "isolated, entry-less, or policy-unreachable switch";
      needs_probes = false;
      run = pass_dead_switch;
    };
    {
      id = "L007-dead-port";
      severity = D.Info;
      doc = "linked port no rule outputs onto";
      needs_probes = false;
      run = pass_dead_port;
    };
    {
      id = "L008-redundant-rule";
      severity = D.Info;
      doc = "entry removable without changing reachability";
      needs_probes = false;
      run = pass_redundant;
    };
    {
      id = "L009-uncovered-rule";
      severity = D.Error;
      doc = "testable entry no planned probe traverses";
      needs_probes = true;
      run = pass_coverage;
    };
  ]

let find key =
  let key = String.lowercase_ascii key in
  List.find_opt
    (fun p ->
      let id = String.lowercase_ascii p.id in
      id = key
      || String.length key <= String.length id
         && String.sub id 0 (String.length key) = key
         && String.length key >= 4)
    all
