(** Lint diagnostics: one finding of one static-analysis pass.

    Every diagnostic carries a {e stable} check id (["L001-forwarding-loop"],
    see [docs/LINT.md] for the catalog), a severity, a source location
    expressed in policy coordinates (switch / table / flow-entry ids —
    the SDN analogue of file:line), and a header-space {b witness}: the
    set of packet headers demonstrating the finding, so every diagnostic
    can be replayed against the emulator or a live network. The witness
    semantics are per-check (the headers leaked into a blackhole, the
    headers two ambiguous rules compete for, ...); structural findings
    with no inhabiting header (e.g. a dead port) carry the empty space —
    itself the evidence ("no header uses this port"). *)

type severity = Error | Warning | Info

val severity_rank : severity -> int
(** [Error] = 0 (most severe), [Warning] = 1, [Info] = 2. *)

val severity_to_string : severity -> string
(** Lowercase: ["error"], ["warning"], ["info"]. *)

type t = {
  check : string;  (** stable check id, e.g. ["L002-blackhole"] *)
  severity : severity;
  switch : int option;  (** primary switch, when the finding has one *)
  table : int option;  (** flow table within [switch] *)
  entries : int list;  (** implicated flow-entry ids, most salient first *)
  witness : Hspace.Hs.t;  (** header-space evidence (may be empty) *)
  message : string;  (** human-readable, self-contained explanation *)
}

val make :
  check:string ->
  severity:severity ->
  ?switch:int ->
  ?table:int ->
  ?entries:int list ->
  witness:Hspace.Hs.t ->
  string ->
  t

val compare : t -> t -> int
(** Severity rank, then check id, then location — the display order. *)

val pp : Format.formatter -> t -> unit
(** One line: [severity[check] location: message [witness ...]]. *)

val to_json : Buffer.t -> t -> unit
(** Append a JSON object (no trailing newline). *)

val json_string : Buffer.t -> string -> unit
(** Append an escaped JSON string literal (shared by report rendering). *)
