(** Detection-quality metrics: the evaluation's FPR and FNR.

    Ground truth and predictions are switch-id lists. Following §VIII:
    FPR is the fraction of good switches incorrectly flagged, FNR the
    fraction of faulty switches that evade detection. *)

type t = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;
  true_negatives : int;
}

val compute : ground_truth:int list -> flagged:int list -> population:int list -> t
(** [population] is the full switch universe; duplicates in inputs are
    ignored. *)

val fpr : t -> float
(** [fp / (fp + tn)]; 0 when no negatives exist. *)

val fnr : t -> float
(** [fn / (fn + tp)]; 0 when no positives exist. *)

val precision : t -> float

val recall : t -> float

val zero : t
(** All counters 0; the identity of {!add}. *)

val add : t -> t -> t
(** Counter-wise sum, for aggregating over repeated runs. *)

val accuracy : t -> float
(** [(tp + tn) / population]; 0 on an empty population. *)

val exact : t -> bool
(** Perfect localization: no false positives and no false negatives. *)

val pure_loss : flagged:int list -> population:int list -> t
(** Confusion matrix of a run with {e no} real fault injected (the
    error-prone environment's noise is the only signal): every flagged
    switch is a false positive. *)

val pp : Format.formatter -> t -> unit
