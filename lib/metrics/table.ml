type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad c s = s ^ String.make (List.nth widths c - String.length s) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line t.headers :: sep :: List.map line rows)

let print t =
  (* sdncheck: allow D006 — Table.print IS the experiments' stdout
     renderer; library callers use [render] and place it themselves *)
  print_string (render t ^ "\n")

let cell_f v = Printf.sprintf "%.2f" v

let cell_i = string_of_int
