(** Named wall-clock timers for instrumenting multi-stage pipelines
    (the lint engine's per-pass timings, experiment phases, ...).

    A recorder accumulates labelled durations in insertion order;
    re-recording an existing label adds to its total, so a label can
    wrap a loop body. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t label f] runs [f], charges its wall-clock duration to
    [label] and returns [f]'s result. Exceptions propagate; the elapsed
    time up to the raise is still recorded. *)

val record : t -> string -> float -> unit
(** Charge an externally-measured duration (seconds) to a label. *)

val timings : t -> (string * float) list
(** Accumulated [(label, seconds)] pairs in first-insertion order. *)

val total : t -> float

val pp : Format.formatter -> t -> unit
(** One [label: duration] line per entry, human-scaled units. *)
