type t = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;
  true_negatives : int;
}

let compute ~ground_truth ~flagged ~population =
  let truth = List.sort_uniq compare ground_truth in
  let pred = List.sort_uniq compare flagged in
  let pop = List.sort_uniq compare population in
  let mem x l = List.mem x l in
  List.fold_left
    (fun acc sw ->
      match (mem sw truth, mem sw pred) with
      | true, true -> { acc with true_positives = acc.true_positives + 1 }
      | false, true -> { acc with false_positives = acc.false_positives + 1 }
      | true, false -> { acc with false_negatives = acc.false_negatives + 1 }
      | false, false -> { acc with true_negatives = acc.true_negatives + 1 })
    { true_positives = 0; false_positives = 0; false_negatives = 0; true_negatives = 0 }
    pop

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let fpr t = ratio t.false_positives (t.false_positives + t.true_negatives)

let fnr t = ratio t.false_negatives (t.false_negatives + t.true_positives)

let precision t = ratio t.true_positives (t.true_positives + t.false_positives)

let recall t = ratio t.true_positives (t.true_positives + t.false_negatives)

let zero =
  { true_positives = 0; false_positives = 0; false_negatives = 0; true_negatives = 0 }

let add a b =
  {
    true_positives = a.true_positives + b.true_positives;
    false_positives = a.false_positives + b.false_positives;
    false_negatives = a.false_negatives + b.false_negatives;
    true_negatives = a.true_negatives + b.true_negatives;
  }

let accuracy t =
  ratio
    (t.true_positives + t.true_negatives)
    (t.true_positives + t.true_negatives + t.false_positives + t.false_negatives)

let exact t = t.false_positives = 0 && t.false_negatives = 0

(* A run with no real fault: every flagged switch is a false positive. *)
let pure_loss ~flagged ~population = compute ~ground_truth:[] ~flagged ~population

let pp fmt t =
  Format.fprintf fmt "tp=%d fp=%d fn=%d tn=%d (fpr=%.3f fnr=%.3f)" t.true_positives
    t.false_positives t.false_negatives t.true_negatives (fpr t) (fnr t)
