type t = {
  mutable order : string list; (* reversed first-insertion order *)
  totals : (string, float) Hashtbl.t;
}

let create () = { order = []; totals = Hashtbl.create 8 }

let record t label seconds =
  (match Hashtbl.find_opt t.totals label with
  | None ->
      t.order <- label :: t.order;
      Hashtbl.add t.totals label seconds
  | Some acc -> Hashtbl.replace t.totals label (acc +. seconds));
  ()

let time t label f =
  let t0 = Sdn_util.Mono.now_s () in
  Fun.protect ~finally:(fun () -> record t label (Sdn_util.Mono.now_s () -. t0)) f

let timings t =
  List.rev_map (fun label -> (label, Hashtbl.find t.totals label)) t.order

let total t = List.fold_left (fun acc (_, s) -> acc +. s) 0. (timings t)

let pp_duration fmt s =
  if s >= 1. then Format.fprintf fmt "%.2f s" s
  else if s >= 1e-3 then Format.fprintf fmt "%.2f ms" (s *. 1e3)
  else Format.fprintf fmt "%.0f us" (s *. 1e6)

let pp fmt t =
  List.iter
    (fun (label, s) -> Format.fprintf fmt "%s: %a@." label pp_duration s)
    (timings t)
