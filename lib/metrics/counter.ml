type t = { name : string; mutable count : int }

let registry : t list ref = ref [] (* reverse creation order *)

let create name =
  let c = { name; count = 0 } in
  registry := c :: !registry;
  c

let incr c = c.count <- c.count + 1

let add c n = c.count <- c.count + n

let value c = c.count

let name c = c.name

let reset c = c.count <- 0

let snapshot () = List.rev_map (fun c -> (c.name, c.count)) !registry

let reset_all () = List.iter (fun c -> c.count <- 0) !registry

let pp fmt () =
  List.iter
    (fun (name, count) -> Format.fprintf fmt "%s: %d@." name count)
    (snapshot ())
