type t = { name : string; count : int Atomic.t }

(* Counters are bumped from pool workers (rule-graph cache hits, SAT
   solves, probe sends), so the count is an [Atomic.t] and the registry
   is mutex-guarded. Registration still happens once per site at module
   init; the hot path is the fetch-and-add. *)

(* sdncheck: allow D005 — mutated only under [registry_m], and only at
   module init (one [create] per counting site) *)
let registry : t list ref = ref [] (* reverse creation order *)

let registry_m = Mutex.create ()

let create name =
  let c = { name; count = Atomic.make 0 } in
  Mutex.lock registry_m;
  registry := c :: !registry;
  Mutex.unlock registry_m;
  c

let incr c = ignore (Atomic.fetch_and_add c.count 1)

let add c n = ignore (Atomic.fetch_and_add c.count n)

let value c = Atomic.get c.count

let name c = c.name

let reset c = Atomic.set c.count 0

let registered () =
  Mutex.lock registry_m;
  let cs = !registry in
  Mutex.unlock registry_m;
  cs

let snapshot () = List.rev_map (fun c -> (c.name, Atomic.get c.count)) (registered ())

let reset_all () = List.iter (fun c -> Atomic.set c.count 0) (registered ())

let pp fmt () =
  List.iter
    (fun (name, count) -> Format.fprintf fmt "%s: %d@." name count)
    (snapshot ())
