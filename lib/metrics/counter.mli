(** Named monotonic event counters (cache hits/misses, retries, ...).

    Counters are registered globally at creation so reports can snapshot
    every instrumented subsystem without threading handles around; they
    are intended to be created once at module initialization. Mutation
    is an atomic fetch-and-add — cheap enough for tight loops and safe
    to bump from pool worker domains (see docs/PARALLEL.md). *)

type t

val create : string -> t
(** Create and register a counter starting at 0. Each call registers a
    new counter; create once per site, not per use. *)

val incr : t -> unit

val add : t -> int -> unit

val value : t -> int

val name : t -> string

val reset : t -> unit

val snapshot : unit -> (string * int) list
(** All registered counters with their current values, in creation
    order. *)

val reset_all : unit -> unit
(** Zero every registered counter (the counters stay registered). *)

val pp : Format.formatter -> unit -> unit
(** One [name: value] line per registered counter. *)
