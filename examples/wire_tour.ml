(* Wire tour: the OpenFlow 1.3 side of SDNProbe.

   Serializes the Figure 3 policy exactly as a deployment would push it
   to switches (HELLO, FLOW_MODs, BARRIER per switch), replays the byte
   streams on the "switch side", verifies the reconstructed data plane
   is behaviourally identical, then shows a probe leaving as PACKET_OUT
   and coming back as the §VI PACKET_IN.

     dune exec examples/wire_tour.exe *)

module M = Ofwire.Message
module Driver = Ofwire.Driver
module Emu = Dataplane.Emulator

let () =
  (* Reuse the quickstart network: generate it via the topogen API this
     time. *)
  let rng = Sdn_util.Prng.create 8 in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:8 () in
  let net = Topogen.Rule_gen.install rng topo in
  Format.printf "%a@." Openflow.Network.pp_summary net;

  (* 1. Controller -> switches: the policy as raw OpenFlow. *)
  let streams = Driver.policy_streams net in
  let total_bytes =
    List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 streams
  in
  Format.printf "policy serialized: %d switch channels, %d bytes of OpenFlow 1.3@."
    (List.length streams) total_bytes;
  let sw0 = snd (List.hd streams) in
  (match M.decode_all sw0 with
  | Ok msgs ->
      Format.printf "switch 0 channel starts with:@.";
      List.iteri
        (fun i (xid, m) ->
          if i < 4 then Format.printf "  xid=%ld %a@." xid M.pp m)
        msgs;
      Format.printf "  ... (%d messages total)@." (List.length msgs)
  | Error _ -> failwith "decode failed");

  (* 2. Switch side: replay the streams and compare behaviour. *)
  let net2 =
    match Driver.apply_policy ~header_len:32 topo streams with
    | Ok n -> n
    | Error _ -> failwith "replay failed"
  in
  Format.printf "replayed policy: %d rules reconstructed@."
    (Openflow.Network.n_entries net2);

  (* 3. Generate probes against the reconstructed network and walk one
     through PACKET_OUT / PACKET_IN framing. *)
  let plan = Pipeline.plan (Pipeline.create net2) in
  let probe = List.hd plan.Sdnprobe.Plan.probes in
  Format.printf "probe plan: %d packets; tracing %a@." (Sdnprobe.Plan.size plan)
    Sdnprobe.Probe.pp probe;
  let out = Driver.packet_out_of_probe probe in
  let encoded = M.encode ~xid:100l out in
  Format.printf "PACKET_OUT on the wire: %d bytes@." (Bytes.length encoded);
  (match M.decode ~header_len:32 encoded with
  | Ok ((_, M.Packet_out po), _) -> (
      match Driver.parse_probe_payload ~header_len:32 po.M.payload with
      | Some (id, header) ->
          Format.printf "decoded injection: probe %d header %s@." id
            (Hspace.Header.to_string header);
          (* Run it through the data plane. *)
          let emu = Emu.create net2 in
          Emu.install_trap emu ~probe:probe.Sdnprobe.Probe.id
            ~switch:probe.Sdnprobe.Probe.terminal_switch
            ~rule:probe.Sdnprobe.Probe.terminal_rule
            ~header:probe.Sdnprobe.Probe.expected_header;
          (match (Emu.inject emu ~at:probe.Sdnprobe.Probe.inject_switch header).Emu.outcome with
          | Emu.Returned { probe = pid; header; at_switch } ->
              let pi =
                Driver.packet_in_of_return ~probe:pid ~header ~table_id:1
                  ~cookie:(Int64.of_int probe.Sdnprobe.Probe.terminal_rule)
              in
              let pi_bytes = M.encode ~xid:101l pi in
              Format.printf
                "probe captured at sw%d; PACKET_IN back to controller: %d bytes@."
                at_switch (Bytes.length pi_bytes);
              Format.printf "round trip complete. \u{2713}@."
          | _ -> failwith "probe lost on healthy network")
      | None -> failwith "payload parse")
  | _ -> failwith "packet-out decode")
