(* Campus audit: continuous data-plane verification of a campus backbone
   (the paper's §VIII-A setting).

   Synthesizes the campus dataset (550 + 579 entry core tables, overlap
   chains up to 65), generates the probe plan once, then audits three
   epochs: a healthy baseline, an epoch where an operator fat-fingers a
   core rule into a wrong port, and an epoch with a stealthy
   header-mangling middlebox. The suspicion ranking shows what a network
   operator would inspect first.

     dune exec examples/campus_audit.exe *)

module FE = Openflow.Flow_entry
module Net = Openflow.Network
module Emu = Dataplane.Emulator
module Fault = Dataplane.Fault
module Runner = Sdnprobe.Runner
module Report = Sdnprobe.Report

let audit name emulator ~expect =
  Format.printf "@.--- epoch: %s ---@." name;
  let config = Sdnprobe.Config.make ~max_rounds:40 () in
  let stop = match expect with [] -> Runner.stop_never | sws -> Runner.stop_when_flagged sws in
  (* Cap the healthy epoch at a few monitoring rounds. *)
  let stop =
    Runner.stop_any [ stop; (fun ~detections:_ ~round ~time_s:_ -> round >= 8) ]
  in
  let report =
    Runner.execute ~stop ~config ~emulator
      (Pipeline.plan (Pipeline.create (Dataplane.Emulator.network emulator)))
  in
  Format.printf "%a@." Report.pp report;
  (match report.Report.suspicion_ranking with
  | [] -> Format.printf "suspicion ranking: all clear@."
  | ranking ->
      Format.printf "suspicion ranking (rule: level):%a@."
        (Fmt.list ~sep:Fmt.nop (fun fmt (r, l) -> Fmt.pf fmt " %d:%d" r l))
        (Sdn_util.Misc.take 5 ranking));
  report

let () =
  let net = Topogen.Campus.synthesize (Sdn_util.Prng.create 42) in
  let stats = Topogen.Campus.stats_of net in
  Format.printf "campus backbone: %d rules (%s), max overlap %d@."
    stats.Topogen.Campus.total_rules
    (String.concat ", "
       (List.map (fun (sw, n) -> Printf.sprintf "core%d=%d" sw n)
          stats.Topogen.Campus.table_sizes))
    stats.Topogen.Campus.max_overlap;
  let plan = Pipeline.plan (Pipeline.create net) in
  Format.printf "probe plan: %d test packets (paper: ~600), generated in %.2fs@."
    (Sdnprobe.Plan.size plan) plan.Sdnprobe.Plan.generation_s;

  (* Healthy epoch. *)
  let emulator = Emu.create net in
  let healthy = audit "healthy baseline" emulator ~expect:[] in
  assert (Report.flagged_switches healthy = []);

  (* A fat-fingered core rule: forwards out the wrong port (back towards
     the ingress). *)
  let core_rule =
    List.find (fun (e : FE.t) -> e.switch = 1 && e.priority = 20) (Net.all_entries net)
  in
  let emulator = Emu.create net in
  Emu.set_fault emulator ~entry:core_rule.FE.id (Fault.make (Fault.Misdirect 1));
  let misdirect = audit "misconfigured core rule" emulator ~expect:[ 1 ] in
  assert (Report.flagged_switches misdirect = [ 1 ]);

  (* A mangling middlebox on core B: flips a payload bit of everything a
     particular rule forwards. *)
  let mangled_rule =
    List.find (fun (e : FE.t) -> e.switch = 2 && e.priority = 10) (Net.all_entries net)
  in
  let emulator = Emu.create net in
  Emu.set_fault emulator ~entry:mangled_rule.FE.id
    (Fault.make (Fault.Rewrite (Hspace.Cube.of_string (String.make 31 'x' ^ "1"))));
  let mangle = audit "header-mangling middlebox" emulator ~expect:[ 2 ] in
  assert (Report.flagged_switches mangle = [ 2 ]);
  Format.printf "@.all three epochs behaved as expected. \u{2713}@."
