(* Detour hunt: colluding switches versus Randomized SDNProbe (§V-C).

   Two compromised switches tunnel traffic between each other so packets
   skip the switches in between — where a firewall would sit. End to
   end nothing looks wrong, and static SDNProbe stays blind. Randomized
   SDNProbe re-draws tested paths every cycle until a path terminates
   between the colluders, exposing them.

     dune exec examples/detour_hunt.exe *)

module FE = Openflow.Flow_entry
module Net = Openflow.Network
module Emu = Dataplane.Emulator
module Fault = Dataplane.Fault
module Runner = Sdnprobe.Runner
module Report = Sdnprobe.Report
module RG = Rulegraph.Rule_graph

let () =
  let rng = Sdn_util.Prng.create 11 in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:16 () in
  let net = Topogen.Rule_gen.install rng topo in
  Format.printf "%a@." Net.pp_summary net;

  (* Pick a colluding pair: an entry and a switch 2-3 hops downstream on
     the packets' natural trajectory. *)
  let rg = RG.build ~closure:false net in
  let compromised, peer =
    let g = RG.base_graph rg in
    let rec find v =
      if v >= RG.n_vertices rg then failwith "no detour candidate"
      else
        let two_hops =
          List.concat_map (Sdngraph.Digraph.succ g) (Sdngraph.Digraph.succ g v)
        in
        let e = RG.vertex_entry rg v in
        match
          List.find_opt (fun u -> (RG.vertex_entry rg u).FE.switch <> e.FE.switch) two_hops
        with
        | Some u -> (e, (RG.vertex_entry rg u).FE.switch)
        | None -> find (v + 1)
    in
    find 0
  in
  Format.printf "colluders: switch %d (rule %d) tunnels to switch %d@."
    compromised.FE.switch compromised.FE.id peer;

  let hunt name mode =
    let emulator = Emu.create net in
    Emu.set_fault emulator ~entry:compromised.FE.id (Fault.make (Fault.Detour peer));
    let config = Sdnprobe.Config.make ~max_rounds:500 () in
    let report =
      Runner.execute
        ~stop:(Runner.stop_when_flagged [ compromised.FE.switch ])
        ~config ~emulator
        ((Sdnprobe.Plan.generate [@alert "-deprecated"]) ~mode net)
    in
    let found = List.mem compromised.FE.switch (Report.flagged_switches report) in
    Format.printf "%s: %s (rounds %d, %.1fs virtual)@." name
      (if found then "caught the detour" else "blind")
      report.Report.rounds report.Report.duration_s;
    found
  in
  let static_found = hunt "static SDNProbe   " Sdnprobe.Plan.Static in
  let randomized_found =
    hunt "randomized SDNProbe" (Sdnprobe.Plan.Randomized (Sdn_util.Prng.create 3))
  in
  if randomized_found && not static_found then
    Format.printf "@.path randomization closed the blind spot. \u{2713}@."
  else if randomized_found then
    Format.printf "@.both variants caught this pair (static got lucky on cover shape).@."
  else begin
    Format.printf "@.unexpected: randomized variant missed the detour@.";
    exit 1
  end
