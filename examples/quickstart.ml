(* Quickstart: the paper's Figure 3 network, end to end.

   Builds the five-switch example topology with its ten flow entries,
   generates the minimum test-packet set (four probes — the paper's
   Figure 6), injects a drop fault on one rule, and localizes the faulty
   switch with Algorithm 2.

     dune exec examples/quickstart.exe *)

module Cube = Hspace.Cube
module FE = Openflow.Flow_entry
module Net = Openflow.Network
module Topology = Openflow.Topology
module Emu = Dataplane.Emulator
module Fault = Dataplane.Fault

let () =
  (* 1. Describe the topology: A-B, B-C, B-D, C-E, D-E. *)
  let topo = Topology.create ~n_switches:5 in
  let a, b, c, d, e = (0, 1, 2, 3, 4) in
  Topology.add_link topo ~sw_a:a ~port_a:1 ~sw_b:b ~port_b:1;
  Topology.add_link topo ~sw_a:b ~port_a:2 ~sw_b:c ~port_b:1;
  Topology.add_link topo ~sw_a:b ~port_a:3 ~sw_b:d ~port_b:1;
  Topology.add_link topo ~sw_a:c ~port_a:2 ~sw_b:e ~port_b:1;
  Topology.add_link topo ~sw_a:d ~port_a:2 ~sw_b:e ~port_b:2;

  (* 2. Install the flow entries of Figure 3 (8-bit headers). *)
  let net = Net.create ~header_len:8 topo in
  let add ~switch ~priority ~match_ ?set_field action =
    Net.add_entry net ~switch ~priority ~match_:(Cube.of_string match_)
      ?set_field:(Option.map Cube.of_string set_field)
      action
  in
  let _a1 = add ~switch:a ~priority:1 ~match_:"00101xxx" (FE.Output 1) in
  let b1 = add ~switch:b ~priority:3 ~match_:"0010xxxx" (FE.Output 2) in
  let _b2 = add ~switch:b ~priority:2 ~match_:"0011xxxx" (FE.Output 2) in
  let _b3 = add ~switch:b ~priority:1 ~match_:"000xxxxx" (FE.Output 3) in
  let _c1 = add ~switch:c ~priority:2 ~match_:"00100xxx" (FE.Output 2) in
  let _c2 = add ~switch:c ~priority:1 ~match_:"001xxxxx" (FE.Output 2) in
  let _d1 = add ~switch:d ~priority:1 ~match_:"000xxxxx" ~set_field:"0111xxxx" (FE.Output 2) in
  let _e1 = add ~switch:e ~priority:3 ~match_:"0010xxxx" FE.Drop in
  let _e2 = add ~switch:e ~priority:2 ~match_:"001xxxxx" FE.Drop in
  let _e3 = add ~switch:e ~priority:1 ~match_:"0111xxxx" FE.Drop in

  (* 3. Generate the minimum set of test packets (rule graph -> MLPC ->
     headers). *)
  let plan = Pipeline.plan (Pipeline.create net) in
  Format.printf "network: %a@." Net.pp_summary net;
  Format.printf "minimum test packets: %d (paper's Figure 6: 4)@."
    (Sdnprobe.Plan.size plan);
  List.iter
    (fun p -> Format.printf "  %a@." Sdnprobe.Probe.pp p)
    plan.Sdnprobe.Plan.probes;

  (* 4. Break switch B: its rule b1 silently drops packets. *)
  let emulator = Emu.create net in
  Emu.set_fault emulator ~entry:b1.FE.id (Fault.make Fault.Drop_packet);
  Format.printf "@.injected: drop fault on rule b1 (switch B)@.";

  (* 5. Localize with Algorithm 2. *)
  let report =
    Sdnprobe.Runner.execute
      ~stop:(Sdnprobe.Runner.stop_when_flagged [ b ])
      ~config:Sdnprobe.Config.default ~emulator
      (Pipeline.plan (Pipeline.create net))
  in
  Format.printf "%a@." Sdnprobe.Report.pp report;
  match Sdnprobe.Report.flagged_switches report with
  | [ 1 ] -> Format.printf "exact localization: switch B, nothing else. \u{2713}@."
  | other ->
      Format.printf "unexpected result: %a@." Fmt.(Dump.list int) other;
      exit 1
