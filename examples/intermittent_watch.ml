(* Intermittent watch: catching a flapping fault with suspicion levels.

   A rule drops packets only in short pseudo-random bursts (active ~30%
   of the time, each burst shorter than a localization cycle). One
   detection round cannot attribute it; Algorithm 2's suspicion levels
   accumulate across rounds until the faulty switch crosses the
   threshold. The run prints each detection and how the suspicion
   ranking singles out the flapping rule.

     dune exec examples/intermittent_watch.exe *)

module FE = Openflow.Flow_entry
module Emu = Dataplane.Emulator
module Fault = Dataplane.Fault
module Runner = Sdnprobe.Runner
module Report = Sdnprobe.Report

let () =
  let rng = Sdn_util.Prng.create 5 in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches:12 () in
  let net = Topogen.Rule_gen.install rng topo in
  Format.printf "%a@." Openflow.Network.pp_summary net;

  let victim =
    List.find
      (fun (e : FE.t) -> match e.action with FE.Output _ -> true | _ -> false)
      (Openflow.Network.all_entries net)
  in
  let emulator = Emu.create net in
  Emu.set_fault emulator ~entry:victim.FE.id
    (Fault.make
       ~activation:(Fault.Random_bursts { window_us = 30_000; active_ratio = 0.3; seed = 42 })
       Fault.Drop_packet);
  Format.printf "flapping rule: %d on switch %d (drop bursts, ~30%% duty)@." victim.FE.id
    victim.FE.switch;

  let config = Sdnprobe.Config.make ~max_rounds:400 () in
  let report =
    Runner.execute
      ~stop:(Runner.stop_when_flagged [ victim.FE.switch ])
      ~config ~emulator
      (Pipeline.plan (Pipeline.create net))
  in
  List.iter
    (fun (d : Report.detection) ->
      Format.printf "detected switch %d at %.2fs (round %d)@." d.Report.switch
        d.Report.time_s d.Report.round)
    report.Report.detections;
  Format.printf "rounds: %d, probes sent: %d@." report.Report.rounds
    report.Report.packets_sent;
  (match report.Report.suspicion_ranking with
  | (rule, level) :: _ ->
      Format.printf "highest suspicion: rule %d (level %d)%s@." rule level
        (if rule = victim.FE.id then " — the flapping rule" else "")
  | [] -> ());
  if Report.flagged_switches report = [ victim.FE.switch ] then
    Format.printf "exact localization despite the flapping. \u{2713}@."
  else begin
    Format.printf "unexpected detection set@.";
    exit 1
  end
