test/test_hspace.ml: Alcotest Array Hspace List QCheck QCheck_alcotest Sdn_util String
