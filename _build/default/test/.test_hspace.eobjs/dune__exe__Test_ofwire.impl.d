test/test_ofwire.ml: Alcotest Array Bytes Dataplane Fixtures Hspace Int64 List Ofwire Openflow Sdn_util Sdnprobe String Topogen
