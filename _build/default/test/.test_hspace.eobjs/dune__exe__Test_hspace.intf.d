test/test_hspace.mli:
