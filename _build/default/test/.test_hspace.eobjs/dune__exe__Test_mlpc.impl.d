test/test_mlpc.ml: Alcotest Array Fixtures Fun Hspace Lazy List Mlpc Openflow Rulegraph Sdn_util Sdngraph
