test/test_topogen.ml: Alcotest Dataplane Fun Hspace List Mlpc Openflow Rulegraph Sat Sdn_util Sdngraph Sdnprobe Topogen
