test/test_mlpc.mli:
