test/test_baselines.ml: Alcotest Baselines Dataplane Fixtures Hspace List Mlpc Openflow Rulegraph Sdn_util Sdnprobe
