test/test_sat.ml: Alcotest Array Hspace List QCheck QCheck_alcotest Sat Sdn_util
