test/test_metrics.ml: Alcotest Fun List Metrics String
