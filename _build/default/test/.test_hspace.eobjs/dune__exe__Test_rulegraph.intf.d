test/test_rulegraph.mli:
