test/test_dataplane.ml: Alcotest Dataplane Fixtures Fun Hspace List Openflow
