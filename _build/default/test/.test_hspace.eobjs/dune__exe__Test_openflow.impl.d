test/test_openflow.ml: Alcotest Array Dataplane Fixtures Hspace List Openflow Option Sdn_util Sdngraph Topogen
