test/test_rulegraph.ml: Alcotest Fixtures Format Hspace Lazy List Openflow Rulegraph Sdn_util Sdngraph Topogen
