test/test_core.ml: Alcotest Dataplane Fixtures Hspace List Openflow Sdn_util Sdnprobe String
