test/test_integration.ml: Alcotest Array Dataplane Hspace List Openflow Option Rulegraph Sdn_util Sdngraph Sdnprobe Topogen
