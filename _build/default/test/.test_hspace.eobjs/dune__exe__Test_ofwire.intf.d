test/test_ofwire.mli:
