test/test_util.ml: Alcotest Array Fun List Sdn_util
