test/test_graph.ml: Alcotest Array Fun Hashtbl List Sdn_util Sdngraph
