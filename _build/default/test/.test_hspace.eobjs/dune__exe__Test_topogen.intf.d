test/test_topogen.mli:
