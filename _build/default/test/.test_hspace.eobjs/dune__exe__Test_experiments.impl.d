test/test_experiments.ml: Alcotest Dataplane Experiments Hspace Lazy List Openflow Printf Rulegraph Sdn_util Sdnprobe String
