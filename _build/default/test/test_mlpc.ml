(* Tests for the MLPC solver: the paper's Figure 6 result, structural
   invariants, brute-force minimality on small random networks, and the
   randomized variant's diversity. *)

module RG = Rulegraph.Rule_graph
module Cover = Mlpc.Cover
module LM = Mlpc.Legal_matching
module Headers = Mlpc.Headers
module Hs = Hspace.Hs
module Cube = Hspace.Cube
module Header = Hspace.Header
module FE = Openflow.Flow_entry
module Prng = Sdn_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Figure 3 -> Figure 6 *)

let fx = lazy (Fixtures.figure3 ())
let rg = lazy (RG.build (Lazy.force fx).Fixtures.net)

let rule_ids (p : Cover.path) =
  List.map (fun v -> (RG.vertex_entry (Lazy.force rg) v).FE.id) p.Cover.rules

let test_figure6_cover () =
  let f = Lazy.force fx in
  let cover = LM.solve (Lazy.force rg) in
  (* The paper's MLPC (Fig. 6) has exactly 4 test packets. Several
     4-path legal covers exist; the solver must find one of them (the
     exact decomposition depends on augmentation order). *)
  check_int "four paths" 4 (Cover.size cover);
  check_bool "is cover" true (Cover.is_cover (Lazy.force rg) cover);
  check_bool "all legal" true (Cover.all_legal (Lazy.force rg) cover);
  (* One path must use the closure edge b2 -> e2 and expand it through
     c2 (the paper's conversion), since e2 is only reachable via c2 and
     c2 also serves another chain. *)
  let b2 = f.Fixtures.b2.FE.id and c2 = f.Fixtures.c2.FE.id and e2 = f.Fixtures.e2.FE.id in
  check_bool "b2 path expands through c2" true
    (List.exists (fun p -> rule_ids p = [ b2; c2; e2 ]) cover.Cover.paths);
  (* The paper's own decomposition is a legal 4-path cover too. *)
  let v e = RG.vertex_of_entry (Lazy.force rg) e.FE.id in
  List.iter
    (fun path -> check_bool "paper path legal" true (RG.is_legal (Lazy.force rg) path))
    [
      List.map v [ f.Fixtures.a1; f.Fixtures.b1; f.Fixtures.c2; f.Fixtures.e1 ];
      List.map v [ f.Fixtures.b2; f.Fixtures.e2 ];
      List.map v [ f.Fixtures.b3; f.Fixtures.d1; f.Fixtures.e3 ];
      [ v f.Fixtures.c1 ];
    ]

let test_cover_metrics () =
  let cover = LM.solve (Lazy.force rg) in
  check_int "max path length" 3 (Cover.max_path_length cover);
  (* Our minimum cover: chains of expanded lengths 3, 3, 3, 2. *)
  Alcotest.(check (float 1e-9)) "mean length" 2.75 (Cover.mean_path_length cover)

(* ------------------------------------------------------------------ *)
(* Brute force minimality on random small networks *)

(* Minimum legal (vertex-disjoint) path cover by exhaustive search over
   matchings in the closure graph. *)
let brute_min_cover rg =
  let n = RG.n_vertices rg in
  let g = RG.graph rg in
  let testable = Array.init n (fun v -> not (Hs.is_empty (RG.input rg v))) in
  let edges =
    List.concat
      (List.init n (fun u ->
           if testable.(u) then
             List.filter_map
               (fun v -> if testable.(v) then Some (u, v) else None)
               (Sdngraph.Digraph.succ g u)
           else []))
  in
  let n_testable = Array.fold_left (fun a t -> if t then a + 1 else a) 0 testable in
  let succ = Array.make n (-1) and pred = Array.make n (-1) in
  let best = ref 0 in
  let chains_legal () =
    let ok = ref true in
    for head = 0 to n - 1 do
      if testable.(head) && pred.(head) = -1 then begin
        let rec follow v acc =
          let acc = v :: acc in
          if succ.(v) >= 0 then follow succ.(v) acc else List.rev acc
        in
        let chain = follow head [] in
        if not (RG.is_legal rg chain) then ok := false
      end
    done;
    !ok
  in
  let rec go size = function
    | [] -> if chains_legal () then best := max !best size
    | (u, v) :: rest ->
        go size rest;
        if succ.(u) = -1 && pred.(v) = -1 then begin
          succ.(u) <- v;
          pred.(v) <- u;
          go (size + 1) rest;
          succ.(u) <- -1;
          pred.(v) <- -1
        end
  in
  go 0 edges;
  n_testable - !best

let test_minimality_vs_brute_force () =
  let rng = Prng.create 404 in
  let tested = ref 0 in
  for _ = 1 to 40 do
    let net =
      Fixtures.random_line_net rng ~n_switches:(2 + Prng.int rng 2)
        ~rules_per_switch:2 ~header_len:5
    in
    let rg = RG.build net in
    (* Keep brute force tractable. *)
    if RG.n_vertices rg <= 9 then begin
      incr tested;
      let cover = LM.solve rg in
      check_bool "is cover" true (Cover.is_cover rg cover);
      check_bool "all legal" true (Cover.all_legal rg cover);
      check_int "minimum" (brute_min_cover rg) (Cover.size cover)
    end
  done;
  check_bool "enough cases" true (!tested >= 20)

let test_figure3_minimality_brute () =
  check_int "figure3 brute minimum" 4 (brute_min_cover (Lazy.force rg))

(* ------------------------------------------------------------------ *)
(* Structural invariants on larger random networks *)

let test_cover_invariants_random () =
  let rng = Prng.create 911 in
  for _ = 1 to 10 do
    let net =
      Fixtures.random_line_net rng ~n_switches:(3 + Prng.int rng 4)
        ~rules_per_switch:4 ~header_len:8
    in
    let rg = RG.build net in
    let cover = LM.solve rg in
    check_bool "is cover" true (Cover.is_cover rg cover);
    check_bool "all legal" true (Cover.all_legal rg cover);
    (* Paths are vertex-disjoint in matched vertices. *)
    let matched = List.concat_map (fun p -> p.Cover.vertices) cover.Cover.paths in
    check_int "disjoint chains" (List.length matched)
      (List.length (List.sort_uniq compare matched));
    (* Untestable vertices really have empty inputs. *)
    List.iter
      (fun v -> check_bool "untestable" true (Hs.is_empty (RG.input rg v)))
      cover.Cover.untestable
  done

let test_untestable_reported () =
  (* A rule fully shadowed by a higher-priority rule is untestable. *)
  let topo = Openflow.Topology.create ~n_switches:2 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Openflow.Network.create ~header_len:4 topo in
  let _hi =
    Openflow.Network.add_entry net ~switch:0 ~priority:2 ~match_:(Cube.of_string "1xxx")
      (FE.Output 1)
  in
  let shadowed =
    Openflow.Network.add_entry net ~switch:0 ~priority:1 ~match_:(Cube.of_string "11xx")
      (FE.Output 1)
  in
  let _sink =
    Openflow.Network.add_entry net ~switch:1 ~priority:1 ~match_:(Cube.of_string "xxxx")
      FE.Drop
  in
  let rg = RG.build net in
  let cover = LM.solve rg in
  check_int "one untestable" 1 (List.length cover.Cover.untestable);
  check_int "it is the shadowed rule" shadowed.FE.id
    (RG.vertex_entry rg (List.hd cover.Cover.untestable)).FE.id;
  check_bool "cover still complete" true (Cover.is_cover rg cover)

(* ------------------------------------------------------------------ *)
(* Randomized variant *)

let test_randomized_valid () =
  let rng = Prng.create 5 in
  for seed = 1 to 10 do
    ignore seed;
    let cover = LM.randomized rng (Lazy.force rg) in
    check_bool "is cover" true (Cover.is_cover (Lazy.force rg) cover);
    check_bool "all legal" true (Cover.all_legal (Lazy.force rg) cover);
    check_bool "at least minimum" true (Cover.size cover >= 4)
  done

let test_randomized_diversity () =
  (* Different seeds must eventually produce different covers. *)
  let net =
    Fixtures.random_line_net (Prng.create 7) ~n_switches:5 ~rules_per_switch:4
      ~header_len:8
  in
  let rg = RG.build net in
  let signatures =
    List.init 8 (fun seed ->
        let cover = LM.randomized (Prng.create (seed + 100)) rg in
        List.sort compare (List.map (fun p -> p.Cover.rules) cover.Cover.paths))
  in
  check_bool "diverse" true (List.length (List.sort_uniq compare signatures) > 1)

let test_randomized_more_packets () =
  (* Across runs, the randomized greedy cover is at least as large as
     the minimum and usually strictly larger somewhere. *)
  let net =
    Fixtures.random_line_net (Prng.create 21) ~n_switches:6 ~rules_per_switch:4
      ~header_len:8
  in
  let rg = RG.build net in
  let minimum = Cover.size (LM.solve rg) in
  let sizes = List.init 10 (fun s -> Cover.size (LM.randomized (Prng.create s) rg)) in
  List.iter (fun s -> check_bool ">= minimum" true (s >= minimum)) sizes

(* ------------------------------------------------------------------ *)
(* Header assignment *)

let test_headers_deterministic () =
  let cover = LM.solve (Lazy.force rg) in
  let assigned = Headers.assign Headers.Deterministic cover in
  check_int "one per path" (Cover.size cover) (List.length assigned);
  List.iter
    (fun ((p : Cover.path), (h : Header.t)) ->
      check_bool "in start space" true (Hs.mem (h :> Cube.t) p.Cover.start_space))
    assigned;
  (* Deterministic: same result twice. *)
  let again = Headers.assign Headers.Deterministic cover in
  check_bool "stable" true
    (List.for_all2 (fun (_, a) (_, b) -> Header.equal a b) assigned again)

let test_headers_sat_unique () =
  let cover = LM.solve (Lazy.force rg) in
  let assigned = Headers.assign Headers.Sat_unique cover in
  let hs = List.map snd assigned in
  check_int "pairwise distinct" (List.length hs)
    (List.length (List.sort_uniq Header.compare hs));
  List.iter
    (fun ((p : Cover.path), (h : Header.t)) ->
      check_bool "in start space" true (Hs.mem (h :> Cube.t) p.Cover.start_space))
    assigned

let test_headers_random () =
  let cover = LM.solve (Lazy.force rg) in
  let a1 = Headers.assign (Headers.Random (Prng.create 1)) cover in
  let a2 = Headers.assign (Headers.Random (Prng.create 2)) cover in
  List.iter
    (fun ((p : Cover.path), (h : Header.t)) ->
      check_bool "in start space" true (Hs.mem (h :> Cube.t) p.Cover.start_space))
    (a1 @ a2);
  (* Over two seeds at least one header should differ (spaces have >= 8
     members each in Figure 3). *)
  check_bool "random differs" true
    (List.exists2 (fun (_, a) (_, b) -> not (Header.equal a b)) a1 a2)

let test_paper_header_space () =
  (* §V-B step 3: HS(a1->b1->c2->e1) = 00101xxx. *)
  let f = Lazy.force fx in
  let cover = LM.solve (Lazy.force rg) in
  let target =
    List.find
      (fun (p : Cover.path) ->
        List.mem (RG.vertex_of_entry (Lazy.force rg) f.Fixtures.a1.FE.id) p.Cover.rules)
      cover.Cover.paths
  in
  check_bool "00101xxx" true
    (Hs.equal_sets target.Cover.start_space (Hs.of_cubes 8 [ Cube.of_string "00101xxx" ]))

(* ------------------------------------------------------------------ *)
(* Traffic profiles (§V-C sFlow sampling) *)

let test_traffic_of_samples () =
  let h s = Header.of_string s in
  let t =
    Mlpc.Traffic.of_samples
      [ (h "00000000", 10); (h "11111111", 5); (h "01010101", 0) ]
  in
  check_int "flows (zero-count dropped)" 2 (Mlpc.Traffic.n_flows t);
  check_int "packets" 15 (Mlpc.Traffic.total_packets t)

let test_traffic_sample_in () =
  let h s = Header.of_string s in
  let t = Mlpc.Traffic.of_samples [ (h "00000001", 100); (h "10000001", 1) ] in
  let rng = Prng.create 3 in
  let zeros = Hs.of_cube (Cube.of_string "0xxxxxxx") in
  for _ = 1 to 20 do
    match Mlpc.Traffic.sample_in t rng zeros with
    | Some picked -> check_bool "restricted" true (Header.equal picked (h "00000001"))
    | None -> Alcotest.fail "expected a sample"
  done;
  (* Weighted: over the full space, the elephant flow dominates. *)
  let full = Hs.full 8 in
  let elephants =
    List.length
      (List.filter
         (fun _ ->
           match Mlpc.Traffic.sample_in t rng full with
           | Some p -> Header.equal p (h "00000001")
           | None -> false)
         (List.init 100 Fun.id))
  in
  check_bool "weighting" true (elephants > 80);
  (* No traffic in the space: None. *)
  check_bool "empty region" true
    (Mlpc.Traffic.sample_in t rng (Hs.of_cube (Cube.of_string "11xxxxxx")) = None)

let test_traffic_weighted_policy () =
  let fx = Fixtures.figure3 () in
  let rg3 = RG.build fx.Fixtures.net in
  let cover = LM.solve rg3 in
  let rng = Prng.create 5 in
  let traffic = Mlpc.Traffic.synthesize rng fx.Fixtures.net ~flows:50 in
  check_bool "synthesized flows" true (Mlpc.Traffic.n_flows traffic > 0);
  let assigned =
    Headers.assign (Headers.Traffic_weighted (traffic, Prng.create 6)) cover
  in
  check_int "one per path" (Mlpc.Cover.size cover) (List.length assigned);
  List.iter
    (fun ((p : Mlpc.Cover.path), (h : Header.t)) ->
      check_bool "in start space" true (Hs.mem (h :> Cube.t) p.Mlpc.Cover.start_space))
    assigned

let () =
  Alcotest.run "mlpc"
    [
      ( "figure6",
        [
          Alcotest.test_case "paper cover" `Quick test_figure6_cover;
          Alcotest.test_case "metrics" `Quick test_cover_metrics;
          Alcotest.test_case "paper header space" `Quick test_paper_header_space;
        ] );
      ( "minimality",
        [
          Alcotest.test_case "figure3 brute force" `Quick test_figure3_minimality_brute;
          Alcotest.test_case "random vs brute force" `Slow test_minimality_vs_brute_force;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "random networks" `Quick test_cover_invariants_random;
          Alcotest.test_case "untestable rules" `Quick test_untestable_reported;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "valid covers" `Quick test_randomized_valid;
          Alcotest.test_case "diversity" `Quick test_randomized_diversity;
          Alcotest.test_case "size vs minimum" `Quick test_randomized_more_packets;
        ] );
      ( "headers",
        [
          Alcotest.test_case "deterministic" `Quick test_headers_deterministic;
          Alcotest.test_case "sat unique" `Quick test_headers_sat_unique;
          Alcotest.test_case "random" `Quick test_headers_random;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "of samples" `Quick test_traffic_of_samples;
          Alcotest.test_case "sample in space" `Quick test_traffic_sample_in;
          Alcotest.test_case "weighted policy" `Quick test_traffic_weighted_policy;
        ] );
    ]
