(* Shared test fixtures.

   [figure3] reconstructs the paper's running example (Fig. 3): five
   switches A..E; boxed vertices are flow entries with 8-bit headers.
   The expected rule-graph facts are spelled out in §V:
   - edge (b2, c2) exists; no edge (c1, e2);
   - a1 -> b1 -> c2 -> e1 is legal; a1 -> b1 -> c1 -> e1 is not;
   - the legal transitive closure adds (b2, e2);
   - the MLPC is {a1->b1->c2->e1, b2->(c2)->e2, b3->d1->e3, c1}. *)

module Cube = Hspace.Cube

type figure3 = {
  net : Openflow.Network.t;
  a1 : Openflow.Flow_entry.t;
  b1 : Openflow.Flow_entry.t;
  b2 : Openflow.Flow_entry.t;
  b3 : Openflow.Flow_entry.t;
  c1 : Openflow.Flow_entry.t;
  c2 : Openflow.Flow_entry.t;
  d1 : Openflow.Flow_entry.t;
  e1 : Openflow.Flow_entry.t;
  e2 : Openflow.Flow_entry.t;
  e3 : Openflow.Flow_entry.t;
}

(* Switch ids. *)
let sw_a = 0
let sw_b = 1
let sw_c = 2
let sw_d = 3
let sw_e = 4

let figure3 () =
  let topo = Openflow.Topology.create ~n_switches:5 in
  (* A-B, B-C, B-D, C-E, D-E. Port n of switch s leads to the n-th
     neighbour in insertion order. *)
  Openflow.Topology.add_link topo ~sw_a ~port_a:1 ~sw_b ~port_b:1;
  Openflow.Topology.add_link topo ~sw_a:sw_b ~port_a:2 ~sw_b:sw_c ~port_b:1;
  Openflow.Topology.add_link topo ~sw_a:sw_b ~port_a:3 ~sw_b:sw_d ~port_b:1;
  Openflow.Topology.add_link topo ~sw_a:sw_c ~port_a:2 ~sw_b:sw_e ~port_b:1;
  Openflow.Topology.add_link topo ~sw_a:sw_d ~port_a:2 ~sw_b:sw_e ~port_b:2;
  let net = Openflow.Network.create ~header_len:8 topo in
  let add ~switch ~priority ~match_ ?set_field action =
    Openflow.Network.add_entry net ~switch ~priority
      ~match_:(Cube.of_string match_)
      ?set_field:(Option.map Cube.of_string set_field)
      action
  in
  let out = Openflow.Flow_entry.(fun p -> Output p) in
  let a1 = add ~switch:sw_a ~priority:1 ~match_:"00101xxx" (out 1) in
  let b1 = add ~switch:sw_b ~priority:3 ~match_:"0010xxxx" (out 2) in
  let b2 = add ~switch:sw_b ~priority:2 ~match_:"0011xxxx" (out 2) in
  let b3 = add ~switch:sw_b ~priority:1 ~match_:"000xxxxx" (out 3) in
  let c1 = add ~switch:sw_c ~priority:2 ~match_:"00100xxx" (out 2) in
  let c2 = add ~switch:sw_c ~priority:1 ~match_:"001xxxxx" (out 2) in
  let d1 = add ~switch:sw_d ~priority:1 ~match_:"000xxxxx" ~set_field:"0111xxxx" (out 2) in
  (* E's entries deliver locally (modelled as Drop): they are the rule
     graph's sinks. *)
  let e1 = add ~switch:sw_e ~priority:3 ~match_:"0010xxxx" Openflow.Flow_entry.Drop in
  let e2 = add ~switch:sw_e ~priority:2 ~match_:"001xxxxx" Openflow.Flow_entry.Drop in
  let e3 = add ~switch:sw_e ~priority:1 ~match_:"0111xxxx" Openflow.Flow_entry.Drop in
  { net; a1; b1; b2; b3; c1; c2; d1; e1; e2; e3 }

(* A random loop-free network: switches in a line, each forwarding a
   few random prefix rules to the next switch; the last switch delivers
   (Drop). Policies always forward rightward, so the rule graph is a
   DAG. Useful for randomized comparisons against brute force. *)
let random_line_net rng ~n_switches ~rules_per_switch ~header_len =
  let topo = Openflow.Topology.create ~n_switches in
  for s = 0 to n_switches - 2 do
    Openflow.Topology.add_link topo ~sw_a:s ~port_a:2 ~sw_b:(s + 1) ~port_b:1
  done;
  let net = Openflow.Network.create ~header_len topo in
  let random_prefix_match () =
    let plen = Sdn_util.Prng.int rng (header_len + 1) in
    Cube.of_bits
      (Array.init header_len (fun k ->
           if k < plen then (if Sdn_util.Prng.bool rng then Cube.One else Cube.Zero)
           else Cube.Any))
  in
  for s = 0 to n_switches - 1 do
    let n_rules = 1 + Sdn_util.Prng.int rng rules_per_switch in
    for p = 1 to n_rules do
      let action =
        if s = n_switches - 1 then Openflow.Flow_entry.Drop
        else Openflow.Flow_entry.Output 2
      in
      ignore
        (Openflow.Network.add_entry net ~switch:s ~priority:p
           ~match_:(random_prefix_match ()) action)
    done
  done;
  net

(* A tiny 3-switch chain A -> B -> C with one forwarding rule per hop;
   handy for emulator unit tests. *)
type chain3 = {
  cnet : Openflow.Network.t;
  r_a : Openflow.Flow_entry.t;
  r_b : Openflow.Flow_entry.t;
  r_c : Openflow.Flow_entry.t;
}

let chain3 () =
  let topo = Openflow.Topology.create ~n_switches:3 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  Openflow.Topology.add_link topo ~sw_a:1 ~port_a:2 ~sw_b:2 ~port_b:1;
  let cnet = Openflow.Network.create ~header_len:8 topo in
  let match_ = Cube.of_string "1xxxxxxx" in
  let r_a =
    Openflow.Network.add_entry cnet ~switch:0 ~priority:1 ~match_
      (Openflow.Flow_entry.Output 1)
  in
  let r_b =
    Openflow.Network.add_entry cnet ~switch:1 ~priority:1 ~match_
      (Openflow.Flow_entry.Output 2)
  in
  let r_c =
    Openflow.Network.add_entry cnet ~switch:2 ~priority:1 ~match_
      Openflow.Flow_entry.Drop
  in
  { cnet; r_a; r_b; r_c }
