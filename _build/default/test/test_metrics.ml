(* Tests for the metrics library: confusion matrices and table
   rendering. *)

module Confusion = Metrics.Confusion
module Table = Metrics.Table

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let pop = List.init 10 Fun.id

let test_perfect () =
  let c = Confusion.compute ~ground_truth:[ 1; 2 ] ~flagged:[ 1; 2 ] ~population:pop in
  check_int "tp" 2 c.Confusion.true_positives;
  check_int "fp" 0 c.Confusion.false_positives;
  check_int "fn" 0 c.Confusion.false_negatives;
  check_int "tn" 8 c.Confusion.true_negatives;
  check_float "fpr" 0. (Confusion.fpr c);
  check_float "fnr" 0. (Confusion.fnr c);
  check_float "precision" 1. (Confusion.precision c);
  check_float "recall" 1. (Confusion.recall c)

let test_mixed () =
  let c =
    Confusion.compute ~ground_truth:[ 0; 1; 2; 3 ] ~flagged:[ 2; 3; 4; 5 ] ~population:pop
  in
  check_int "tp" 2 c.Confusion.true_positives;
  check_int "fp" 2 c.Confusion.false_positives;
  check_int "fn" 2 c.Confusion.false_negatives;
  check_int "tn" 4 c.Confusion.true_negatives;
  check_float "fpr" (2. /. 6.) (Confusion.fpr c);
  check_float "fnr" 0.5 (Confusion.fnr c)

let test_empty_truth () =
  let c = Confusion.compute ~ground_truth:[] ~flagged:[ 1 ] ~population:pop in
  check_float "fnr defined" 0. (Confusion.fnr c);
  check_float "fpr" 0.1 (Confusion.fpr c)

let test_all_faulty () =
  (* No negatives: FPR defined as 0 rather than NaN. *)
  let c = Confusion.compute ~ground_truth:pop ~flagged:pop ~population:pop in
  check_float "fpr" 0. (Confusion.fpr c);
  check_float "fnr" 0. (Confusion.fnr c)

let test_duplicates_ignored () =
  let c =
    Confusion.compute ~ground_truth:[ 1; 1; 1 ] ~flagged:[ 1; 1 ] ~population:pop
  in
  check_int "tp" 1 c.Confusion.true_positives

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  check_int "lines" 4 (List.length lines);
  (* Columns padded to widest cell. *)
  check_bool "header padded" true (List.nth lines 0 = "a    bb");
  check_bool "separator" true (List.nth lines 1 = "---  --");
  check_bool "row" true (List.nth lines 2 = "1    2 ")

let test_table_arity () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "int" "42" (Table.cell_i 42)

let () =
  Alcotest.run "metrics"
    [
      ( "confusion",
        [
          Alcotest.test_case "perfect" `Quick test_perfect;
          Alcotest.test_case "mixed" `Quick test_mixed;
          Alcotest.test_case "empty truth" `Quick test_empty_truth;
          Alcotest.test_case "all faulty" `Quick test_all_faulty;
          Alcotest.test_case "duplicates" `Quick test_duplicates_ignored;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "cells" `Quick test_cells;
        ] );
    ]
