(* Tests for the data-plane emulator: honest forwarding, traps, and the
   full fault taxonomy of §III-B. *)

module Emu = Dataplane.Emulator
module Fault = Dataplane.Fault
module Clock = Dataplane.Clock
module Cube = Hspace.Cube
module Header = Hspace.Header
module FE = Openflow.Flow_entry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let h = Header.of_string

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock () =
  let c = Clock.create () in
  check_int "starts at 0" 0 (Clock.now_us c);
  Clock.advance_us c 1500;
  check_int "advance" 1500 (Clock.now_us c);
  Alcotest.(check (float 1e-9)) "seconds" 0.0015 (Clock.now_seconds c);
  Clock.reset c;
  check_int "reset" 0 (Clock.now_us c);
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance_us: negative")
    (fun () -> Clock.advance_us c (-1))

(* ------------------------------------------------------------------ *)
(* Fault activation *)

let test_fault_always () =
  let f = Fault.make Fault.Drop_packet in
  check_bool "active" true (Fault.is_active f ~now_us:0 ~header:(h "00000000"));
  check_bool "active later" true (Fault.is_active f ~now_us:999999 ~header:(h "11111111"))

let test_fault_intermittent () =
  let f =
    Fault.make
      ~activation:(Fault.Intermittent { period_us = 100; duty_us = 30; phase_us = 0 })
      Fault.Drop_packet
  in
  let hdr = h "00000000" in
  check_bool "t=0 active" true (Fault.is_active f ~now_us:0 ~header:hdr);
  check_bool "t=29 active" true (Fault.is_active f ~now_us:29 ~header:hdr);
  check_bool "t=30 inactive" false (Fault.is_active f ~now_us:30 ~header:hdr);
  check_bool "t=99 inactive" false (Fault.is_active f ~now_us:99 ~header:hdr);
  check_bool "t=100 active" true (Fault.is_active f ~now_us:100 ~header:hdr);
  check_bool "t=129 active" true (Fault.is_active f ~now_us:129 ~header:hdr)

let test_fault_random_bursts () =
  let f =
    Fault.make
      ~activation:(Fault.Random_bursts { window_us = 1000; active_ratio = 0.5; seed = 7 })
      Fault.Drop_packet
  in
  let hdr = h "00000000" in
  (* Deterministic given the seed; constant within a window. *)
  let a0 = Fault.is_active f ~now_us:100 ~header:hdr in
  check_bool "stable in window" true (a0 = Fault.is_active f ~now_us:900 ~header:hdr);
  check_bool "reproducible" true (a0 = Fault.is_active f ~now_us:100 ~header:hdr);
  (* Roughly half the windows are active. *)
  let active =
    List.length
      (List.filter
         (fun w -> Fault.is_active f ~now_us:(w * 1000) ~header:hdr)
         (List.init 1000 Fun.id))
  in
  check_bool "ratio respected" true (active > 400 && active < 600);
  (* A different seed gives a different pattern. *)
  let g =
    Fault.make
      ~activation:(Fault.Random_bursts { window_us = 1000; active_ratio = 0.5; seed = 8 })
      Fault.Drop_packet
  in
  let differs =
    List.exists
      (fun w ->
        Fault.is_active f ~now_us:(w * 1000) ~header:hdr
        <> Fault.is_active g ~now_us:(w * 1000) ~header:hdr)
      (List.init 100 Fun.id)
  in
  check_bool "seed matters" true differs

let test_fault_targeting () =
  let f =
    Fault.make ~activation:(Fault.Targeting (Cube.of_string "1010xxxx")) Fault.Drop_packet
  in
  check_bool "in target" true (Fault.is_active f ~now_us:0 ~header:(h "10101111"));
  check_bool "out of target" false (Fault.is_active f ~now_us:0 ~header:(h "10111111"))

(* ------------------------------------------------------------------ *)
(* Honest forwarding *)

let test_forwarding_chain () =
  let { Fixtures.cnet; r_a; r_b; r_c } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  let r = Emu.inject emu ~at:0 (h "10000001") in
  (match r.Emu.outcome with
  | Emu.Delivered { at_switch; header } ->
      check_int "delivered at 2" 2 at_switch;
      check_bool "header unchanged" true (Header.equal header (h "10000001"))
  | _ -> Alcotest.fail "expected delivery");
  check_int "three hops" 3 (List.length r.Emu.trace);
  check_bool "trace rules" true
    (List.map (fun hop -> hop.Emu.entry) r.Emu.trace = [ r_a.FE.id; r_b.FE.id; r_c.FE.id ])

let test_forwarding_no_match () =
  let { Fixtures.cnet; _ } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  match (Emu.inject emu ~at:0 (h "00000001")).Emu.outcome with
  | Emu.Lost (Emu.No_match 0) -> ()
  | _ -> Alcotest.fail "expected no-match loss at switch 0"

let test_forwarding_figure3 () =
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  (* 00101111 takes a1 -> b1 -> c2 -> e1. *)
  let r = Emu.inject emu ~at:0 (h "00101111") in
  check_bool "rules traversed" true
    (List.map (fun hop -> hop.Emu.entry) r.Emu.trace
    = [ fx.Fixtures.a1.FE.id; fx.Fixtures.b1.FE.id; fx.Fixtures.c2.FE.id; fx.Fixtures.e1.FE.id ]);
  (* 000***** via b3 picks up d1's set field. *)
  let r2 = Emu.inject emu ~at:1 (h "00010101") in
  match r2.Emu.outcome with
  | Emu.Delivered { header; _ } ->
      Alcotest.(check string) "set field applied" "01110101" (Header.to_string header)
  | _ -> Alcotest.fail "expected delivery"

let test_ttl_loop () =
  (* Build a looping policy directly (Network does not forbid it; the
     rule-graph stage does, but the emulator must still terminate). *)
  let topo = Openflow.Topology.create ~n_switches:2 in
  Openflow.Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  let net = Openflow.Network.create ~header_len:4 topo in
  let m = Cube.of_string "xxxx" in
  let _ = Openflow.Network.add_entry net ~switch:0 ~priority:1 ~match_:m (FE.Output 1) in
  let _ = Openflow.Network.add_entry net ~switch:1 ~priority:1 ~match_:m (FE.Output 1) in
  let emu = Emu.create net in
  match (Emu.inject emu ~at:0 (h "0000")).Emu.outcome with
  | Emu.Lost Emu.Ttl_exceeded -> ()
  | _ -> Alcotest.fail "expected TTL loss"

(* ------------------------------------------------------------------ *)
(* Traps *)

let test_trap_returns () =
  let { Fixtures.cnet; r_c; _ } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  Emu.install_trap emu ~probe:7 ~switch:2 ~rule:r_c.FE.id ~header:(h "10000001");
  (match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Returned { probe; at_switch; _ } ->
      check_int "probe id" 7 probe;
      check_int "at terminal" 2 at_switch
  | _ -> Alcotest.fail "expected return");
  (* A different header does not trigger the trap. *)
  (match (Emu.inject emu ~at:0 (h "10000010")).Emu.outcome with
  | Emu.Delivered _ -> ()
  | _ -> Alcotest.fail "expected normal delivery");
  Emu.remove_probe_traps emu ~probe:7;
  match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Delivered _ -> ()
  | _ -> Alcotest.fail "expected delivery after trap removal"

let test_trap_wrong_rule () =
  (* A trap keyed on rule r does not fire when a different rule matches
     (models §VI: only the duplicated rule's action becomes goto). *)
  let { Fixtures.cnet; r_b; _ } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  Emu.install_trap emu ~probe:1 ~switch:2 ~rule:r_b.FE.id ~header:(h "10000001");
  match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Delivered _ -> ()
  | _ -> Alcotest.fail "trap must not fire for another rule"

let test_trap_mid_path () =
  let { Fixtures.cnet; r_b; _ } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  Emu.install_trap emu ~probe:3 ~switch:1 ~rule:r_b.FE.id ~header:(h "10000001");
  match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Returned { probe = 3; at_switch = 1; _ } -> ()
  | _ -> Alcotest.fail "expected mid-path return"

(* ------------------------------------------------------------------ *)
(* Faults through the emulator *)

let test_fault_drop () =
  let { Fixtures.cnet; r_b; _ } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  Emu.set_fault emu ~entry:r_b.FE.id (Fault.make Fault.Drop_packet);
  (match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Lost (Emu.Dropped_by_fault 1) -> ()
  | _ -> Alcotest.fail "expected fault drop at switch 1");
  check_bool "faulty switches" true (Emu.faulty_switches emu = [ 1 ]);
  Emu.clear_fault emu ~entry:r_b.FE.id;
  match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Delivered _ -> ()
  | _ -> Alcotest.fail "expected recovery after clearing fault"

let test_fault_misdirect () =
  (* Misdirect back out port 1 of switch 1: the packet returns to switch
     0, matches again, ping-pongs, and dies by TTL. *)
  let { Fixtures.cnet; r_b; _ } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  Emu.set_fault emu ~entry:r_b.FE.id (Fault.make (Fault.Misdirect 1));
  (match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Lost Emu.Ttl_exceeded -> ()
  | _ -> Alcotest.fail "expected ping-pong TTL loss");
  (* Misdirect to a dead port. *)
  Emu.set_fault emu ~entry:r_b.FE.id (Fault.make (Fault.Misdirect 9));
  match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Lost (Emu.Dead_port 1) -> ()
  | _ -> Alcotest.fail "expected dead-port loss"

let test_fault_rewrite () =
  let { Fixtures.cnet; r_b; _ } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  Emu.set_fault emu ~entry:r_b.FE.id
    (Fault.make (Fault.Rewrite (Cube.of_string "1111xxxx")));
  match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Delivered { header; _ } ->
      Alcotest.(check string) "modified" "11110001" (Header.to_string header)
  | _ -> Alcotest.fail "expected delivery of modified packet"

let test_fault_rewrite_breaks_trap () =
  let { Fixtures.cnet; r_b; r_c; _ } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  Emu.install_trap emu ~probe:1 ~switch:2 ~rule:r_c.FE.id ~header:(h "10000001");
  Emu.set_fault emu ~entry:r_b.FE.id
    (Fault.make (Fault.Rewrite (Cube.of_string "x1xxxxxx")));
  (* Rewritten header still matches r_c but misses the exact trap. *)
  match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Delivered { header; _ } ->
      Alcotest.(check string) "modified" "11000001" (Header.to_string header)
  | _ -> Alcotest.fail "expected trap miss"

let test_fault_intermittent_emulated () =
  let { Fixtures.cnet; r_b; _ } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  Emu.set_fault emu ~entry:r_b.FE.id
    (Fault.make
       ~activation:(Fault.Intermittent { period_us = 1000; duty_us = 500; phase_us = 0 })
       Fault.Drop_packet);
  (* Clock at 0: fault active. *)
  (match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Lost (Emu.Dropped_by_fault 1) -> ()
  | _ -> Alcotest.fail "expected drop while active");
  Clock.advance_us (Emu.clock emu) 600;
  match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Delivered _ -> ()
  | _ -> Alcotest.fail "expected delivery while inactive"

let test_fault_targeting_emulated () =
  let { Fixtures.cnet; r_b; _ } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  Emu.set_fault emu ~entry:r_b.FE.id
    (Fault.make ~activation:(Fault.Targeting (Cube.of_string "1000000x")) Fault.Drop_packet);
  (match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Lost (Emu.Dropped_by_fault 1) -> ()
  | _ -> Alcotest.fail "targeted header must be dropped");
  match (Emu.inject emu ~at:0 (h "10000010")).Emu.outcome with
  | Emu.Delivered _ -> ()
  | _ -> Alcotest.fail "non-targeted header must pass"

let test_fault_detour_invisible () =
  (* Figure 3: a1 detours to switch C. The packet skips B but still
     reaches its destination and the terminal trap: invisible end to
     end — the colluding-detour blind spot. *)
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.a1.FE.id (Fault.make (Fault.Detour Fixtures.sw_c));
  Emu.install_trap emu ~probe:1 ~switch:Fixtures.sw_e ~rule:fx.Fixtures.e1.FE.id
    ~header:(h "00101111");
  let r = Emu.inject emu ~at:Fixtures.sw_a (h "00101111") in
  (match r.Emu.outcome with
  | Emu.Returned { probe = 1; _ } -> ()
  | _ -> Alcotest.fail "detour within path must stay invisible");
  (* ... but switch B is genuinely skipped. *)
  check_bool "b1 skipped" true
    (not (List.exists (fun hop -> hop.Emu.entry = fx.Fixtures.b1.FE.id) r.Emu.trace))

let test_fault_detour_visible_when_terminal_skipped () =
  (* Same detour, but the trap sits at c2 (mid-path terminal): the
     packet reaches C via the tunnel and still matches c2 — place the
     trap at B instead, which the tunnel skips: the probe is lost. *)
  let fx = Fixtures.figure3 () in
  let emu = Emu.create fx.Fixtures.net in
  Emu.set_fault emu ~entry:fx.Fixtures.a1.FE.id (Fault.make (Fault.Detour Fixtures.sw_c));
  Emu.install_trap emu ~probe:1 ~switch:Fixtures.sw_b ~rule:fx.Fixtures.b1.FE.id
    ~header:(h "00101111");
  match (Emu.inject emu ~at:Fixtures.sw_a (h "00101111")).Emu.outcome with
  | Emu.Returned _ -> Alcotest.fail "trap at skipped switch must not fire"
  | _ -> ()

let test_fault_on_trap_rule_detected () =
  (* A drop fault on the tested terminal rule itself: §VI's table
     duplication means the real rule processes the probe first, so the
     fault fires and the probe is lost — the last rule is testable. *)
  let { Fixtures.cnet; r_c; _ } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  Emu.install_trap emu ~probe:1 ~switch:2 ~rule:r_c.FE.id ~header:(h "10000001");
  Emu.set_fault emu ~entry:r_c.FE.id (Fault.make Fault.Drop_packet);
  match (Emu.inject emu ~at:0 (h "10000001")).Emu.outcome with
  | Emu.Lost (Emu.Dropped_by_fault 2) -> ()
  | _ -> Alcotest.fail "fault on terminal rule must be observable"

(* ------------------------------------------------------------------ *)
(* Flow counters *)

let test_flow_counters () =
  let { Fixtures.cnet; r_a; r_b; r_c } = Fixtures.chain3 () in
  let emu = Emu.create cnet in
  check_int "fresh" 0 (Emu.flow_count emu ~entry:r_a.FE.id);
  for _ = 1 to 3 do
    ignore (Emu.inject emu ~at:0 (h "10000001"))
  done;
  check_int "a counted" 3 (Emu.flow_count emu ~entry:r_a.FE.id);
  check_int "b counted" 3 (Emu.flow_count emu ~entry:r_b.FE.id);
  check_int "c counted" 3 (Emu.flow_count emu ~entry:r_c.FE.id);
  (* Mid-chain injection only counts downstream rules. *)
  ignore (Emu.inject emu ~at:1 (h "10000001"));
  check_int "a unchanged" 3 (Emu.flow_count emu ~entry:r_a.FE.id);
  check_int "b bumped" 4 (Emu.flow_count emu ~entry:r_b.FE.id);
  (* Faulty executions count too: the rule processed the packet. *)
  Emu.set_fault emu ~entry:r_b.FE.id (Fault.make Fault.Drop_packet);
  ignore (Emu.inject emu ~at:0 (h "10000001"));
  check_int "faulty still counts" 5 (Emu.flow_count emu ~entry:r_b.FE.id);
  check_int "downstream starved" 4 (Emu.flow_count emu ~entry:r_c.FE.id);
  check_bool "non-zero listing" true (List.length (Emu.flow_counts emu) = 3);
  Emu.reset_flow_counts emu;
  check_int "reset" 0 (Emu.flow_count emu ~entry:r_a.FE.id)

let () =
  Alcotest.run "dataplane"
    [
      ("clock", [ Alcotest.test_case "basics" `Quick test_clock ]);
      ( "fault activation",
        [
          Alcotest.test_case "always" `Quick test_fault_always;
          Alcotest.test_case "intermittent" `Quick test_fault_intermittent;
          Alcotest.test_case "random bursts" `Quick test_fault_random_bursts;
          Alcotest.test_case "targeting" `Quick test_fault_targeting;
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "chain" `Quick test_forwarding_chain;
          Alcotest.test_case "no match" `Quick test_forwarding_no_match;
          Alcotest.test_case "figure3" `Quick test_forwarding_figure3;
          Alcotest.test_case "ttl loop" `Quick test_ttl_loop;
        ] );
      ( "traps",
        [
          Alcotest.test_case "returns" `Quick test_trap_returns;
          Alcotest.test_case "wrong rule" `Quick test_trap_wrong_rule;
          Alcotest.test_case "mid path" `Quick test_trap_mid_path;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop" `Quick test_fault_drop;
          Alcotest.test_case "misdirect" `Quick test_fault_misdirect;
          Alcotest.test_case "rewrite" `Quick test_fault_rewrite;
          Alcotest.test_case "rewrite breaks trap" `Quick test_fault_rewrite_breaks_trap;
          Alcotest.test_case "intermittent" `Quick test_fault_intermittent_emulated;
          Alcotest.test_case "targeting" `Quick test_fault_targeting_emulated;
          Alcotest.test_case "detour invisible" `Quick test_fault_detour_invisible;
          Alcotest.test_case "detour visible" `Quick test_fault_detour_visible_when_terminal_skipped;
          Alcotest.test_case "fault on terminal rule" `Quick test_fault_on_trap_rule_detected;
        ] );
      ("counters", [ Alcotest.test_case "flow counters" `Quick test_flow_counters ]);
    ]
