(* Tests for the CDCL solver and the header-selection encodings. *)

module Solver = Sat.Solver
module HE = Sat.Header_encoding
module Cube = Hspace.Cube
module Hs = Hspace.Hs
module Prng = Sdn_util.Prng

let check_bool = Alcotest.(check bool)

let is_sat = function Solver.Sat _ -> true | Solver.Unsat -> false

(* ------------------------------------------------------------------ *)
(* Solver unit tests *)

let test_empty_problem () =
  let s = Solver.create () in
  check_bool "trivially sat" true (is_sat (Solver.solve s))

let test_unit_clauses () =
  let s = Solver.create () in
  Solver.add_clause s [ 1 ];
  Solver.add_clause s [ -2 ];
  match Solver.solve s with
  | Solver.Sat m ->
      check_bool "v1" true m.(1);
      check_bool "v2" false m.(2)
  | Solver.Unsat -> Alcotest.fail "expected sat"

let test_contradiction () =
  let s = Solver.create () in
  Solver.add_clause s [ 1 ];
  Solver.add_clause s [ -1 ];
  check_bool "unsat" false (is_sat (Solver.solve s))

let test_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  check_bool "unsat" false (is_sat (Solver.solve s))

let test_propagation_chain () =
  (* 1, 1->2, 2->3, ..., forces all true. *)
  let s = Solver.create () in
  Solver.add_clause s [ 1 ];
  for v = 1 to 19 do
    Solver.add_clause s [ -v; v + 1 ]
  done;
  match Solver.solve s with
  | Solver.Sat m -> check_bool "v20" true m.(20)
  | Solver.Unsat -> Alcotest.fail "expected sat"

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small unsat instance. Var p*2+h-2 maps
     pigeon p in hole h (p in 1..3, h in 1..2). *)
  let var p h = ((p - 1) * 2) + h in
  let s = Solver.create () in
  for p = 1 to 3 do
    Solver.add_clause s [ var p 1; var p 2 ]
  done;
  for h = 1 to 2 do
    for p1 = 1 to 3 do
      for p2 = p1 + 1 to 3 do
        Solver.add_clause s [ -var p1 h; -var p2 h ]
      done
    done
  done;
  check_bool "unsat" false (is_sat (Solver.solve s))

let test_model_satisfies () =
  (* A satisfiable structured instance; verify the model. *)
  let clauses = [ [ 1; 2; -3 ]; [ -1; 3 ]; [ 2; 3 ]; [ -2; -3; 4 ]; [ -4; 1 ] ] in
  let s = Solver.create () in
  List.iter (Solver.add_clause s) clauses;
  match Solver.solve s with
  | Solver.Unsat -> Alcotest.fail "expected sat"
  | Solver.Sat m ->
      List.iter
        (fun clause ->
          check_bool "clause satisfied" true
            (List.exists (fun l -> if l > 0 then m.(l) else not m.(-l)) clause))
        clauses

let test_incremental () =
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  check_bool "sat" true (is_sat (Solver.solve s));
  Solver.add_clause s [ -1 ];
  Solver.add_clause s [ -2 ];
  check_bool "now unsat" false (is_sat (Solver.solve s));
  check_bool "stays unsat" false (is_sat (Solver.solve s))

let test_assumptions () =
  let s = Solver.create () in
  Solver.add_clause s [ -1; 2 ];
  Solver.add_clause s [ -2; 3 ];
  (match Solver.solve ~assumptions:[ 1; -3 ] s with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "expected unsat under assumptions");
  (* Solver still usable and satisfiable without assumptions. *)
  check_bool "recovers" true (is_sat (Solver.solve s));
  match Solver.solve ~assumptions:[ 1 ] s with
  | Solver.Sat m ->
      check_bool "chain" true (m.(1) && m.(2) && m.(3))
  | Solver.Unsat -> Alcotest.fail "expected sat"

(* ------------------------------------------------------------------ *)
(* Random instances vs. brute force *)

let brute_force nvars clauses =
  (* Try all assignments. *)
  let rec loop asg =
    if asg >= 1 lsl nvars then false
    else
      let value v = asg land (1 lsl (v - 1)) <> 0 in
      let ok =
        List.for_all
          (List.exists (fun l -> if l > 0 then value l else not (value (-l))))
          clauses
      in
      ok || loop (asg + 1)
  in
  loop 0

let random_3sat rng nvars nclauses =
  List.init nclauses (fun _ ->
      List.init 3 (fun _ ->
          let v = 1 + Prng.int rng nvars in
          if Prng.bool rng then v else -v))

let test_random_vs_brute () =
  let rng = Prng.create 2018 in
  for _ = 1 to 60 do
    let nvars = 4 + Prng.int rng 9 in
    let nclauses = 3 + Prng.int rng (4 * nvars) in
    let clauses = random_3sat rng nvars nclauses in
    let s = Solver.create ~nvars () in
    List.iter (Solver.add_clause s) clauses;
    let expected = brute_force nvars clauses in
    match Solver.solve s with
    | Solver.Sat m ->
        check_bool "brute agrees (sat)" true expected;
        List.iter
          (fun clause ->
            check_bool "model ok" true
              (List.exists (fun l -> if l > 0 then m.(l) else not m.(-l)) clause))
          clauses
    | Solver.Unsat -> check_bool "brute agrees (unsat)" false expected
  done

let test_hard_random () =
  (* Near the phase transition (ratio ~4.26); just must terminate and be
     self-consistent on a model. *)
  let rng = Prng.create 99 in
  for _ = 1 to 10 do
    let nvars = 40 in
    let clauses = random_3sat rng nvars 170 in
    let s = Solver.create ~nvars () in
    List.iter (Solver.add_clause s) clauses;
    match Solver.solve s with
    | Solver.Sat m ->
        List.iter
          (fun clause ->
            check_bool "model ok" true
              (List.exists (fun l -> if l > 0 then m.(l) else not m.(-l)) clause))
          clauses
    | Solver.Unsat -> ()
  done

(* ------------------------------------------------------------------ *)
(* Header encodings *)

let test_find_rule_input () =
  (* e2's input in Figure 3: 001xxxxx − 0010xxxx = 0011xxxx. *)
  let h =
    HE.find_rule_input ~match_:(Cube.of_string "001xxxxx")
      ~overlaps:[ Cube.of_string "0010xxxx" ]
  in
  match h with
  | None -> Alcotest.fail "expected header"
  | Some h ->
      check_bool "in match" true (Hspace.Header.matches h (Cube.of_string "001xxxxx"));
      check_bool "outside overlap" false
        (Hspace.Header.matches h (Cube.of_string "0010xxxx"))

let test_find_rule_input_empty () =
  (* c1 -> e2 in the paper: 00100xxx fully covered by 0010xxxx. *)
  check_bool "unsat" true
    (HE.find_rule_input ~match_:(Cube.of_string "00100xxx")
       ~overlaps:[ Cube.of_string "0010xxxx" ]
    = None)

let test_unique_headers () =
  (* Ask for 8 distinct headers in a cube with exactly 8 members. *)
  let inside = [ Cube.of_string "00000xxx" ] in
  let rec collect acc n =
    if n = 0 then acc
    else
      match HE.find_header ~distinct_from:acc ~inside 8 with
      | Some h -> collect (h :: acc) (n - 1)
      | None -> Alcotest.fail "expected another header"
  in
  let headers = collect [] 8 in
  let uniq = List.sort_uniq Hspace.Header.compare headers in
  Alcotest.(check int) "8 distinct" 8 (List.length uniq);
  (* The 9th must not exist. *)
  check_bool "exhausted" true (HE.find_header ~distinct_from:headers ~inside 8 = None)

let test_avoid_cubes () =
  let inside = [ Cube.of_string "xxxxxxxx" ] in
  let avoid = [ Cube.of_string "1xxxxxxx"; Cube.of_string "01xxxxxx" ] in
  match HE.find_header ~avoid ~inside 8 with
  | None -> Alcotest.fail "expected header"
  | Some h ->
      check_bool "avoids both" true
        (not (Hspace.Header.matches h (List.nth avoid 0))
        && not (Hspace.Header.matches h (List.nth avoid 1)))

let prop_find_matches_hs =
  (* find_rule_input agrees with the HSA computation of r.in. *)
  let gen =
    QCheck.Gen.(
      let gen_bit =
        frequency [ (2, return Cube.Zero); (2, return Cube.One); (3, return Cube.Any) ]
      in
      let gen_cube = map (fun b -> Cube.of_bits (Array.of_list b)) (list_size (return 10) gen_bit) in
      pair gen_cube (list_size (int_bound 4) gen_cube))
  in
  QCheck.Test.make ~name:"SAT witness agrees with HSA emptiness" ~count:300
    (QCheck.make gen)
    (fun (m, overlaps) ->
      let hs = List.fold_left (fun acc o -> Hs.diff_cube acc o) (Hs.of_cube m) overlaps in
      match HE.find_rule_input ~match_:m ~overlaps with
      | Some h -> Hs.mem (h :> Cube.t) hs
      | None -> Hs.is_empty hs)

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "empty problem" `Quick test_empty_problem;
          Alcotest.test_case "unit clauses" `Quick test_unit_clauses;
          Alcotest.test_case "contradiction" `Quick test_contradiction;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "propagation chain" `Quick test_propagation_chain;
          Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
          Alcotest.test_case "model satisfies" `Quick test_model_satisfies;
          Alcotest.test_case "incremental" `Quick test_incremental;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "random vs brute force" `Quick test_random_vs_brute;
          Alcotest.test_case "hard random" `Quick test_hard_random;
        ] );
      ( "header encoding",
        [
          Alcotest.test_case "find rule input" `Quick test_find_rule_input;
          Alcotest.test_case "find rule input empty" `Quick test_find_rule_input_empty;
          Alcotest.test_case "unique headers" `Quick test_unique_headers;
          Alcotest.test_case "avoid cubes" `Quick test_avoid_cubes;
          QCheck_alcotest.to_alcotest prop_find_matches_hs;
        ] );
    ]
