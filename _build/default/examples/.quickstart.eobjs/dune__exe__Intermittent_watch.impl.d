examples/intermittent_watch.ml: Dataplane Format List Openflow Sdn_util Sdnprobe Topogen
