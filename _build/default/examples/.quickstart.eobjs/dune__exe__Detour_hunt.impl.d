examples/detour_hunt.ml: Dataplane Format List Openflow Rulegraph Sdn_util Sdngraph Sdnprobe Topogen
