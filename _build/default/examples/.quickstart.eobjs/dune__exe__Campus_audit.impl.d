examples/campus_audit.ml: Dataplane Fmt Format Hspace List Openflow Printf Sdn_util Sdnprobe String Topogen
