examples/intermittent_watch.mli:
