examples/wire_tour.ml: Bytes Dataplane Format Hspace Int64 List Ofwire Openflow Sdn_util Sdnprobe Topogen
