examples/detour_hunt.mli:
