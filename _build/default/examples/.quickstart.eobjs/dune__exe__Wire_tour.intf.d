examples/wire_tour.mli:
