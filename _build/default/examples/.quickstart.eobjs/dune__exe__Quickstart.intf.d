examples/quickstart.mli:
