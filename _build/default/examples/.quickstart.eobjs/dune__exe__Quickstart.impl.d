examples/quickstart.ml: Dataplane Dump Fmt Format Hspace List Openflow Option Sdnprobe
