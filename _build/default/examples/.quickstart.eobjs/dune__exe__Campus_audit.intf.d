examples/campus_audit.mli:
