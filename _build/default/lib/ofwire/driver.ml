module Cube = Hspace.Cube
module Header = Hspace.Header
module FE = Openflow.Flow_entry
module Network = Openflow.Network
module Topology = Openflow.Topology
module Probe = Sdnprobe.Probe

let ofpp_table = 0xfffffff9 (* OFPP_TABLE: submit to the flow tables *)

let instructions_of_entry (e : FE.t) =
  let set_fields =
    if FE.is_identity_set e then [] else [ Message.Set_field e.set_field ]
  in
  match e.action with
  | FE.Output port -> [ Message.Apply_actions (set_fields @ [ Message.Output port ]) ]
  | FE.Drop ->
      (* Dropping = empty action set; keep set-fields for observability. *)
      if set_fields = [] then [] else [ Message.Apply_actions set_fields ]
  | FE.Goto_table tb ->
      if set_fields = [] then [ Message.Goto_table tb ]
      else [ Message.Apply_actions set_fields; Message.Goto_table tb ]

let flow_mod_of_entry (e : FE.t) =
  {
    Message.cookie = Int64.of_int e.id;
    table_id = e.table;
    command = `Add;
    priority = e.priority;
    match_ = e.match_;
    instructions = instructions_of_entry e;
  }

let policy_streams net =
  List.init (Network.n_switches net) (fun sw ->
      let w = Byte_io.Writer.create () in
      let xid = ref 0l in
      let emit msg =
        xid := Int32.add !xid 1l;
        Byte_io.Writer.raw w (Message.encode ~xid:!xid msg)
      in
      emit Message.Hello;
      List.iter
        (fun e -> emit (Message.Flow_mod (flow_mod_of_entry e)))
        (Network.switch_entries net sw);
      emit Message.Barrier_request;
      (sw, Byte_io.Writer.contents w))

(* Rebuild an entry from a decoded flow mod. *)
let entry_of_flow_mod net ~switch (fm : Message.flow_mod) =
  let set_field, action =
    let rec interpret set_field action = function
      | [] -> (set_field, action)
      | Message.Goto_table tb :: rest -> interpret set_field (Some (FE.Goto_table tb)) rest
      | Message.Apply_actions actions :: rest ->
          let set_field, action =
            List.fold_left
              (fun (sf, act) a ->
                match a with
                | Message.Set_field c -> (Some c, act)
                | Message.Output p -> (sf, Some (FE.Output p)))
              (set_field, action) actions
          in
          interpret set_field action rest
    in
    interpret None None fm.Message.instructions
  in
  let action = Option.value ~default:FE.Drop action in
  ignore
    (Network.add_entry net ~switch ~table:fm.Message.table_id
       ~priority:fm.Message.priority ~match_:fm.Message.match_ ?set_field action)

let apply_policy ~header_len topo streams =
  let net = Network.create ~header_len ~tables_per_switch:4 topo in
  let rec apply_stream switch = function
    | [] -> Ok ()
    | (_, msg) :: rest -> (
        match msg with
        | Message.Flow_mod fm when fm.Message.command = `Add ->
            entry_of_flow_mod net ~switch fm;
            apply_stream switch rest
        | Message.Flow_mod _ | Message.Hello | Message.Barrier_request
        | Message.Echo_request _ | Message.Echo_reply _ | Message.Features_request ->
            apply_stream switch rest
        | other ->
            Error
              (Message.Malformed
                 (Format.asprintf "unexpected message on switch channel: %a" Message.pp
                    other)))
  in
  let rec loop = function
    | [] -> Ok net
    | (switch, bytes) :: rest -> (
        match Message.decode_all ~header_len bytes with
        | Error e -> Error e
        | Ok msgs -> (
            match apply_stream switch msgs with
            | Ok () -> loop rest
            | Error e -> Error e))
  in
  loop streams

(* Probe payload: u32 probe id + header bits packed MSB-first. *)
let pack_header (h : Header.t) =
  let len = Header.length h in
  let bytes = Bytes.make ((len + 7) / 8) '\000' in
  for k = 0 to len - 1 do
    if Header.get h k then begin
      let b = Bytes.get_uint8 bytes (k / 8) in
      Bytes.set_uint8 bytes (k / 8) (b lor (0x80 lsr (k mod 8)))
    end
  done;
  bytes

let unpack_header ~header_len bytes =
  if Bytes.length bytes < (header_len + 7) / 8 then None
  else
    Some
      (Header.of_cube
         (Cube.of_bits
            (Array.init header_len (fun k ->
                 if Bytes.get_uint8 bytes (k / 8) land (0x80 lsr (k mod 8)) <> 0 then
                   Cube.One
                 else Cube.Zero))))

let probe_payload (p : Probe.t) =
  let w = Byte_io.Writer.create () in
  Byte_io.Writer.u32i w p.Probe.id;
  Byte_io.Writer.raw w (pack_header p.Probe.header);
  Byte_io.Writer.contents w

let parse_probe_payload ~header_len payload =
  if Bytes.length payload < 4 then None
  else
    let r = Byte_io.Reader.of_bytes payload in
    let id = Int32.to_int (Byte_io.Reader.u32 r) in
    let rest = Byte_io.Reader.raw r (Byte_io.Reader.remaining r) in
    Option.map (fun h -> (id, h)) (unpack_header ~header_len rest)

let packet_out_of_probe p =
  Message.Packet_out
    { Message.actions = [ Message.Output ofpp_table ]; payload = probe_payload p }

let packet_in_of_return ~probe ~header ~table_id ~cookie =
  let w = Byte_io.Writer.create () in
  Byte_io.Writer.u32i w probe;
  Byte_io.Writer.raw w (pack_header header);
  Message.Packet_in
    { Message.reason = 1 (* OFPR_ACTION *); table_id; cookie;
      payload = Byte_io.Writer.contents w }
