lib/ofwire/message.mli: Format Hspace
