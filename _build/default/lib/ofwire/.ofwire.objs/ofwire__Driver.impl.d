lib/ofwire/driver.ml: Array Byte_io Bytes Format Hspace Int32 Int64 List Message Openflow Option Sdnprobe
