lib/ofwire/byte_io.mli:
