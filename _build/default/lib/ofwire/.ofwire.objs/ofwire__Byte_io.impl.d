lib/ofwire/byte_io.ml: Bytes Int32
