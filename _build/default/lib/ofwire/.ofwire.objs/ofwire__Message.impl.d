lib/ofwire/message.ml: Array Byte_io Bytes Format Hspace Int32 Int64 List Printf
