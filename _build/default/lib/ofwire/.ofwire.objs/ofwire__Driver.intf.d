lib/ofwire/driver.mli: Hspace Message Openflow Sdnprobe
