(** Legal path covers of a rule graph (Definition 2).

    A cover is a set of legal paths such that every {e testable} vertex
    (one with a non-empty input space) lies on at least one path.
    Vertices with an empty input space are fully shadowed by
    higher-priority rules — no packet can ever exercise them — and are
    reported separately as [untestable] rather than covered. *)

type path = {
  vertices : int list;
      (** the path in (closure-)rule-graph vertices, as matched *)
  rules : int list;
      (** the expansion into base-graph vertices: the actual rule
          sequence a packet traverses (closure edges replaced by their
          witness interiors) *)
  start_space : Hspace.Hs.t;
      (** headers injectable in front of the first rule that traverse
          the whole expansion; non-empty for a legal path *)
}

type t = {
  paths : path list;
  untestable : int list;  (** vertices with empty input space *)
}

val size : t -> int
(** Number of paths = number of test packets. *)

val of_successors : Rulegraph.Rule_graph.t -> succ:int array -> t
(** Decode a path cover from a successor function (the standard
    matching-to-path-cover correspondence: [succ.(u) = v] links [u]
    before [v]; [-1] ends a chain). Untestable vertices are filtered
    out of the chains they'd form alone. *)

val is_cover : Rulegraph.Rule_graph.t -> t -> bool
(** Every testable vertex appears in some path's [rules]. *)

val all_legal : Rulegraph.Rule_graph.t -> t -> bool
(** Every path's expansion has a non-empty forward space. *)

val covered_vertices : t -> int list
(** Sorted, de-duplicated vertices covered via expansions. *)

val mean_path_length : t -> float

val max_path_length : t -> int

val pp : Rulegraph.Rule_graph.t -> Format.formatter -> t -> unit
