(** Traffic profiles for header sampling (§V-C).

    The paper samples probe headers "either uniformly at random or based
    on the past traffic distribution (e.g., sFlow)": for each period the
    controller collects the observed headers [h^t(ℓ)] per path and picks
    a test packet inside [HS(ℓ) ∩ h^t(ℓ)]. A profile here is a weighted
    multiset of concrete headers, as an sFlow collector would export;
    {!synthesize} builds a synthetic profile (Zipf-weighted random
    flows) for evaluation, standing in for the unavailable campus sFlow
    feed. *)

type t

val of_samples : (Hspace.Header.t * int) list -> t
(** Build from observed [(header, packet_count)] samples; non-positive
    counts are dropped. *)

val synthesize :
  Sdn_util.Prng.t -> Openflow.Network.t -> flows:int -> t
(** A synthetic sFlow export: [flows] random headers drawn from the
    match spaces of random forwarding entries, with Zipf-like weights
    (a few elephants, many mice). *)

val n_flows : t -> int

val total_packets : t -> int

val sample_in : t -> Sdn_util.Prng.t -> Hspace.Hs.t -> Hspace.Header.t option
(** Draw an observed header lying in the given space,
    packet-count-weighted; [None] when the profile has no traffic
    there (the caller falls back to uniform sampling). *)
