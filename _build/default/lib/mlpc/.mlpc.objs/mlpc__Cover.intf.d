lib/mlpc/cover.mli: Format Hspace Rulegraph
