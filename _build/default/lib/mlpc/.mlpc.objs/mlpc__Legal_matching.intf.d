lib/mlpc/legal_matching.mli: Cover Rulegraph Sdn_util
