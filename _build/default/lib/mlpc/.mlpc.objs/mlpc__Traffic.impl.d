lib/mlpc/traffic.ml: Array Hspace List Openflow Sdn_util
