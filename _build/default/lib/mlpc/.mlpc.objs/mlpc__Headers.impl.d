lib/mlpc/headers.ml: Cover Hspace List Option Sat Sdn_util Traffic
