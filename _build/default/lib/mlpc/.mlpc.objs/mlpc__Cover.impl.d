lib/mlpc/cover.ml: Array Format Fun Hspace List Openflow Rulegraph
