lib/mlpc/traffic.mli: Hspace Openflow Sdn_util
