lib/mlpc/headers.mli: Cover Hspace Sdn_util Traffic
