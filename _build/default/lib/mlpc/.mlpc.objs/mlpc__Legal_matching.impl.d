lib/mlpc/legal_matching.ml: Array Cover Hashtbl Hspace List Rulegraph Sdn_util Sdngraph
