module Hs = Hspace.Hs
module Cube = Hspace.Cube
module Header = Hspace.Header

type policy =
  | Deterministic
  | Sat_unique
  | Random of Sdn_util.Prng.t
  | Traffic_weighted of Traffic.t * Sdn_util.Prng.t

let sat_pick ~distinct_from hs =
  (* Try each cube of the space until the SAT query finds a header that
     differs from all previously chosen ones. *)
  let rec loop = function
    | [] -> None
    | cube :: rest -> (
        match
          Sat.Header_encoding.find_header ~distinct_from ~inside:[ cube ]
            (Cube.length cube)
        with
        | Some h -> Some h
        | None -> loop rest)
  in
  loop (Hs.cubes hs)

let random_pick rng ~distinct_from hs =
  (* Rejection sampling for distinctness; falls back to a duplicate when
     the space is smaller than the number of paths sharing it. *)
  let taken h = List.exists (Header.equal h) distinct_from in
  let rec loop attempts =
    match Hs.sample rng hs with
    | None -> None
    | Some c ->
        let h = Header.of_cube c in
        if (not (taken h)) && attempts < 64 then Some h
        else if taken h && attempts < 64 then loop (attempts + 1)
        else Some h
  in
  loop 0

let header_for_path ?(distinct_from = []) policy (p : Cover.path) =
  match policy with
  | Deterministic -> Option.map Header.of_cube (Hs.first_member p.Cover.start_space)
  | Sat_unique -> (
      match sat_pick ~distinct_from p.Cover.start_space with
      | Some h -> Some h
      | None ->
          (* Space exhausted by distinctness constraints: fall back to a
             (duplicate) deterministic member. *)
          Option.map Header.of_cube (Hs.first_member p.Cover.start_space))
  | Random rng -> random_pick rng ~distinct_from p.Cover.start_space
  | Traffic_weighted (traffic, rng) -> (
      match Traffic.sample_in traffic rng p.Cover.start_space with
      | Some h -> Some h
      | None -> random_pick rng ~distinct_from p.Cover.start_space)

let assign policy (cover : Cover.t) =
  let _, chosen =
    List.fold_left
      (fun (seen, acc) p ->
        match header_for_path ~distinct_from:seen policy p with
        | Some h -> (h :: seen, (p, h) :: acc)
        | None -> (seen, acc))
      ([], []) cover.Cover.paths
  in
  List.rev chosen
