module RG = Rulegraph.Rule_graph
module Hs = Hspace.Hs

type path = { vertices : int list; rules : int list; start_space : Hs.t }

type t = { paths : path list; untestable : int list }

let size t = List.length t.paths

(* A probe is injected at its first rule's switch and processed from
   table 0; a chain that starts mid-pipeline (table > 0) is therefore
   extended backwards through the same switch's earlier tables (the
   solvers only build injectable chains, so the plan exists except for
   pipeline-dead rules, which the caller reports as untestable). *)
let make_path rg vertices =
  match RG.injection_plan rg (RG.expand_path rg vertices) with
  | Some (rules, start_space) -> Some { vertices; rules; start_space }
  | None -> None

let of_successors rg ~succ =
  let n = RG.n_vertices rg in
  let has_pred = Array.make n false in
  Array.iter (fun v -> if v >= 0 then has_pred.(v) <- true) succ;
  let untestable =
    List.filter (fun v -> Hs.is_empty (RG.input rg v)) (List.init n Fun.id)
  in
  let dead = Array.make n false in
  List.iter (fun v -> dead.(v) <- true) untestable;
  let chains = ref [] in
  for head = 0 to n - 1 do
    if (not has_pred.(head)) && not dead.(head) then begin
      let rec follow v acc =
        let acc = v :: acc in
        if succ.(v) >= 0 then follow succ.(v) acc else List.rev acc
      in
      chains := follow head [] :: !chains
    end
  done;
  (* Chains the injection analysis rejects consist of pipeline-dead
     rules (no header can reach them through their own switch's earlier
     tables): report them as untestable rather than covered. *)
  let paths, dead_chains =
    List.fold_left
      (fun (paths, dead) chain ->
        match make_path rg chain with
        | Some p -> (p :: paths, dead)
        | None -> (paths, chain @ dead))
      ([], []) !chains
  in
  { paths; untestable = List.sort_uniq compare (untestable @ dead_chains) }

let covered_vertices t =
  List.sort_uniq compare (List.concat_map (fun p -> p.rules) t.paths)

let is_cover rg t =
  let n = RG.n_vertices rg in
  let covered = Array.make n false in
  List.iter (fun p -> List.iter (fun v -> covered.(v) <- true) p.rules) t.paths;
  List.iter (fun v -> covered.(v) <- true) t.untestable;
  let rec check v = v >= n || (covered.(v) && check (v + 1)) in
  check 0

let all_legal rg t =
  List.iter
    (fun p ->
      (* The recorded start space must agree with a fresh computation. *)
      assert (Hs.equal_sets p.start_space (RG.start_space rg p.rules)))
    t.paths;
  List.for_all (fun p -> not (Hs.is_empty (RG.forward_space rg p.rules))) t.paths

let mean_path_length t =
  match t.paths with
  | [] -> 0.
  | ps ->
      float_of_int (List.fold_left (fun acc p -> acc + List.length p.rules) 0 ps)
      /. float_of_int (List.length ps)

let max_path_length t =
  List.fold_left (fun acc p -> max acc (List.length p.rules)) 0 t.paths

let pp rg fmt t =
  let entry v = (RG.vertex_entry rg v).Openflow.Flow_entry.id in
  Format.fprintf fmt "@[<v>cover: %d paths%a@]" (size t)
    (fun fmt () ->
      List.iter
        (fun p ->
          Format.fprintf fmt "@,  [%a]"
            (Format.pp_print_list
               ~pp_sep:(fun f () -> Format.pp_print_string f " -> ")
               Format.pp_print_int)
            (List.map entry p.rules))
        t.paths)
    ()
