module Header = Hspace.Header
module Hs = Hspace.Hs
module Cube = Hspace.Cube
module FE = Openflow.Flow_entry

type t = { samples : (Header.t * int) array; total : int }

let of_samples samples =
  let samples = Array.of_list (List.filter (fun (_, c) -> c > 0) samples) in
  { samples; total = Array.fold_left (fun a (_, c) -> a + c) 0 samples }

let synthesize rng net ~flows =
  let entries =
    Array.of_list
      (List.filter
         (fun (e : FE.t) -> match e.action with FE.Output _ -> true | _ -> false)
         (Openflow.Network.all_entries net))
  in
  if Array.length entries = 0 then of_samples []
  else
    of_samples
      (List.init flows (fun i ->
           let e = Sdn_util.Prng.choose rng entries in
           let header = Header.of_cube (Cube.sample rng e.FE.match_) in
           (* Zipf-like weights: flow rank r carries ~ N/r packets. *)
           (header, max 1 (10_000 / (i + 1)))))

let n_flows t = Array.length t.samples

let total_packets t = t.total

let sample_in t rng hs =
  let matching =
    Array.to_list t.samples
    |> List.filter (fun ((h : Header.t), _) -> Hs.mem (h :> Cube.t) hs)
  in
  match matching with
  | [] -> None
  | _ ->
      let total = List.fold_left (fun a (_, c) -> a + c) 0 matching in
      let x = Sdn_util.Prng.int rng total in
      let rec pick acc = function
        | [] -> assert false
        | [ (h, _) ] -> h
        | (h, c) :: rest -> if x < acc + c then h else pick (acc + c) rest
      in
      Some (pick 0 matching)
