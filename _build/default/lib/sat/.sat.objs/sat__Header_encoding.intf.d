lib/sat/header_encoding.mli: Hspace Solver
