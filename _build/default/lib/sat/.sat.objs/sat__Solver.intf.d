lib/sat/solver.mli:
