lib/sat/header_encoding.ml: Array Hspace List Solver
