(* Figure 8(a): number of generated test packets per scheme across
   topologies of growing size. Expected shape: SDNProbe lowest, ATPG
   above it, Randomized SDNProbe ~1.3-1.8x SDNProbe, Per-rule = number
   of flow entries. *)

let run ~scale =
  Exp_common.banner "Figure 8(a): number of generated test packets";
  let nets = Workloads.suite ~count:(Exp_common.suite_count scale) ~seed:100 () in
  let table =
    Metrics.Table.create
      [ "topology"; "switches"; "links"; "rules"; "sdnprobe"; "rand-sdnprobe"; "atpg"; "per-rule"; "atpg/sdn"; "rand/sdn" ]
  in
  let ratios_atpg = ref [] and ratios_rand = ref [] in
  List.iter
    (fun (w : Workloads.sized_net) ->
      let net = w.Workloads.network in
      let count scheme = Schemes.plan_size scheme ~seed:7 net in
      let sdn = count Schemes.Sdnprobe in
      let rand = count Schemes.Randomized_sdnprobe in
      let atpg = count Schemes.Atpg in
      let pr = count Schemes.Per_rule in
      let ra = float_of_int atpg /. float_of_int sdn in
      let rr = float_of_int rand /. float_of_int sdn in
      ratios_atpg := ra :: !ratios_atpg;
      ratios_rand := rr :: !ratios_rand;
      Metrics.Table.add_row table
        [
          w.Workloads.label;
          Metrics.Table.cell_i w.Workloads.n_switches;
          Metrics.Table.cell_i w.Workloads.n_links;
          Metrics.Table.cell_i (Openflow.Network.n_entries net);
          Metrics.Table.cell_i sdn;
          Metrics.Table.cell_i rand;
          Metrics.Table.cell_i atpg;
          Metrics.Table.cell_i pr;
          Metrics.Table.cell_f ra;
          Metrics.Table.cell_f rr;
        ])
    nets;
  Metrics.Table.print table;
  Exp_common.note
    "paper: SDNProbe lowest; ATPG avg ~1.43x SDNProbe; Randomized ~1.72x; per-rule = #rules";
  Exp_common.note "measured: ATPG avg %.2fx, Randomized avg %.2fx"
    (Sdn_util.Misc.mean !ratios_atpg)
    (Sdn_util.Misc.mean !ratios_rand)
