(* Shared helpers for the experiment drivers. *)

type scale = Quick | Full

let runs_of_scale = function Quick -> 3 | Full -> 10

let suite_count = function Quick -> 6 | Full -> 10

let banner title =
  Printf.printf "\n== %s ==\n%!" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt

(* A fresh emulator with a fault set drawn from [fault_seed]; identical
   fault sets across schemes come from reusing the seed. *)
let emulator_with_faults ~fault_seed ~kind ~fraction network =
  let emulator = Dataplane.Emulator.create network in
  let truth =
    Workloads.inject (Sdn_util.Prng.create fault_seed) ~kind ~fraction emulator
  in
  (emulator, truth)

(* Switch-granular variant for the accuracy sweeps (Figure 9). *)
let emulator_with_switch_faults ~fault_seed ~kind ~switch_fraction network =
  let emulator = Dataplane.Emulator.create network in
  let truth =
    Workloads.inject_switches (Sdn_util.Prng.create fault_seed) ~kind ~switch_fraction
      emulator
  in
  (emulator, truth)
