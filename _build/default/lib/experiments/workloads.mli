(** Shared evaluation workloads: the topology suite of §VIII-B and the
    attack/fault injection used across Figures 8 and 9.

    Everything is derived deterministically from integer seeds so each
    experiment is reproducible run to run. *)

type sized_net = {
  label : string;
  n_switches : int;
  n_links : int;
  network : Openflow.Network.t;
}

val suite : ?count:int -> seed:int -> unit -> sized_net list
(** Growing Rocketfuel-like topologies with engineered-flow policies
    (§VIII-B evaluates "100 topologies with varying number of flow
    entries"; [count] defaults to 8 for bench runtime — raise it for a
    paper-scale sweep). *)

val large : seed:int -> sized_net
(** The "large-scale topology" of Fig. 8(c)/9. *)

type fault_kind =
  | Basic  (** random mix of drop / misdirect / modify *)
  | Drop_only
  | Detour  (** colluding path detour (§III-B) *)

val inject :
  Sdn_util.Prng.t ->
  kind:fault_kind ->
  fraction:float ->
  Dataplane.Emulator.t ->
  int list
(** Mark [fraction] of the forwarding entries faulty; returns the
    ground-truth faulty switches (sorted, deduplicated).

    [Basic] draws uniformly among dropping the packet, misdirecting it
    to a random other port of the switch, and rewriting four random
    header bits. [Detour] picks for each compromised entry a colluding
    switch 2–3 hops downstream in the rule graph, so the deviation
    rejoins the packet's natural trajectory (the stealthy case); the
    detouring switch is the ground truth. *)

val inject_switches :
  Sdn_util.Prng.t ->
  kind:fault_kind ->
  switch_fraction:float ->
  ?rules_per_switch:float ->
  Dataplane.Emulator.t ->
  int list
(** Switch-granular injection for the accuracy sweeps (the abstract's
    "50% of switches being faulty"): [switch_fraction] of the switches
    become faulty, each on [rules_per_switch] (default 0.3) of its own
    forwarding entries. Returns the ground truth. *)

val population : Openflow.Network.t -> int list
(** All switch ids. *)
