module Prng = Sdn_util.Prng
module Network = Openflow.Network
module Topology = Openflow.Topology
module FE = Openflow.Flow_entry
module Emu = Dataplane.Emulator
module Fault = Dataplane.Fault
module RG = Rulegraph.Rule_graph
module Digraph = Sdngraph.Digraph

type sized_net = {
  label : string;
  n_switches : int;
  n_links : int;
  network : Network.t;
}

let build ~seed ~n_switches ~flows ~k =
  let rng = Prng.create seed in
  let topo = Topogen.Topo_gen.rocketfuel_like rng ~n_switches () in
  let spec =
    {
      Topogen.Rule_gen.default_spec with
      Topogen.Rule_gen.k_paths = k;
      flows_per_destination = flows;
    }
  in
  let network = Topogen.Rule_gen.install ~spec rng topo in
  {
    label = Printf.sprintf "n%d" n_switches;
    n_switches;
    n_links = Topology.n_links topo;
    network;
  }

let suite ?(count = 8) ~seed () =
  List.init count (fun i ->
      let n_switches = 10 + (4 * i) in
      build ~seed:(seed + i) ~n_switches ~flows:6 ~k:3)

let large ~seed = build ~seed ~n_switches:36 ~flows:6 ~k:3

let population net = List.init (Network.n_switches net) Fun.id

type fault_kind = Basic | Drop_only | Detour

(* Forwarding entries eligible for faults (skip the delivery rules so
   every fault has observable forwarding behaviour). *)
let eligible net =
  List.filter
    (fun (e : FE.t) -> match e.action with FE.Output _ -> true | _ -> false)
    (Network.all_entries net)

let random_basic_effect rng net (e : FE.t) =
  match Prng.int rng 3 with
  | 0 -> Fault.Drop_packet
  | 1 ->
      (* Misdirect to another (possibly dead) port of this switch. *)
      let ports = Topology.ports_of (Network.topology net) e.switch in
      let current = match e.action with FE.Output p -> p | _ -> -1 in
      let others = List.filter (fun p -> p <> current) ports in
      if others = [] then Fault.Drop_packet
      else Fault.Misdirect (Prng.choose_list rng others)
  | _ ->
      (* Rewrite four random header bits. *)
      let len = Network.header_len net in
      let set = ref (Hspace.Cube.wildcard len) in
      for _ = 1 to 4 do
        let bit = Prng.int rng len in
        set :=
          Hspace.Cube.set !set bit (if Prng.bool rng then Hspace.Cube.One else Hspace.Cube.Zero)
      done;
      Fault.Rewrite !set

(* A colluding peer for a stealthy detour: the tunnel must rejoin the
   packets' natural trajectory (§III-B: the packet "deviates from the
   testing path but eventually returns to the intended path"), i.e. the
   peer is the switch every packet of this entry visits two hops
   downstream. Entries whose traffic fans out at hop two have no fully
   stealthy peer and return [None]. *)
let detour_peer _rng rg (e : FE.t) =
  let v = try Some (RG.vertex_of_entry rg e.id) with Not_found -> None in
  match v with
  | None -> None
  | Some v ->
      let g = RG.base_graph rg in
      let level1 = Digraph.succ g v in
      let level2 = List.concat_map (Digraph.succ g) level1 in
      let skip_switches =
        List.sort_uniq compare (List.map (fun u -> (RG.vertex_entry rg u).FE.switch) level1)
      in
      let landing_switches =
        List.sort_uniq compare (List.map (fun u -> (RG.vertex_entry rg u).FE.switch) level2)
      in
      (match landing_switches with
      | [ w ] when w <> e.switch && not (List.mem w skip_switches) -> Some w
      | _ -> None)

(* Switch-granular injection: a fraction of the switches are faulty
   (the abstract's "50% of switches being faulty"), each on a sample of
   its own rules. Keeps FPR meaningful at high fractions. *)
let inject_switches rng ~kind ~switch_fraction ?(rules_per_switch = 0.3) emulator =
  let net = Emu.network emulator in
  let n = Network.n_switches net in
  let n_faulty = max 1 (int_of_float (switch_fraction *. float_of_int n)) in
  let switches = Prng.sample_without_replacement rng n_faulty n in
  let rg = lazy (RG.build ~closure:false net) in
  let faulted =
    List.filter_map
      (fun sw ->
        let rules =
          List.filter (fun (e : FE.t) -> e.switch = sw) (eligible net)
        in
        let arr = Array.of_list rules in
        Prng.shuffle rng arr;
        let k =
          max 1 (int_of_float (rules_per_switch *. float_of_int (Array.length arr)))
        in
        let injected = ref false in
        Array.iteri
          (fun i (e : FE.t) ->
            match kind with
            | Drop_only when i < k ->
                Emu.set_fault emulator ~entry:e.id (Fault.make Fault.Drop_packet);
                injected := true
            | Basic when i < k ->
                Emu.set_fault emulator ~entry:e.id
                  (Fault.make (random_basic_effect rng net e));
                injected := true
            | Detour when not !injected -> (
                (* One stealthy tunnel per colluding switch: a switch
                   with several detoured rules would betray itself
                   through whichever tunnel happens to be visible. *)
                match detour_peer rng (Lazy.force rg) e with
                | Some peer ->
                    Emu.set_fault emulator ~entry:e.id (Fault.make (Fault.Detour peer));
                    injected := true
                | None -> ())
            | Drop_only | Basic | Detour -> ())
          arr;
        if !injected then Some sw else None)
      switches
  in
  List.sort_uniq compare faulted

let inject rng ~kind ~fraction emulator =
  let net = Emu.network emulator in
  let pool = Array.of_list (eligible net) in
  Prng.shuffle rng pool;
  let n_faulty = max 1 (int_of_float (fraction *. float_of_int (Array.length pool))) in
  let chosen = Array.to_list (Array.sub pool 0 (min n_faulty (Array.length pool))) in
  let rg = lazy (RG.build ~closure:false net) in
  let faulted =
    List.filter_map
      (fun (e : FE.t) ->
        match kind with
        | Drop_only ->
            Emu.set_fault emulator ~entry:e.id (Fault.make Fault.Drop_packet);
            Some e.switch
        | Basic ->
            Emu.set_fault emulator ~entry:e.id
              (Fault.make (random_basic_effect rng net e));
            Some e.switch
        | Detour -> (
            match detour_peer rng (Lazy.force rg) e with
            | Some peer ->
                Emu.set_fault emulator ~entry:e.id (Fault.make (Fault.Detour peer));
                Some e.switch
            | None -> None))
      chosen
  in
  List.sort_uniq compare faulted
