lib/experiments/exp_real_dataset.ml: Exp_common List Mlpc Openflow Printf Rulegraph Sat Sdn_util String Topogen Unix
