lib/experiments/exp_table2.ml: Exp_common Hspace List Metrics Mlpc Openflow Printf Rulegraph Sdn_util Sdngraph Topogen Unix
