lib/experiments/exp_fig9.ml: Exp_common List Metrics Printf Schemes Sdn_util Sdnprobe Workloads
