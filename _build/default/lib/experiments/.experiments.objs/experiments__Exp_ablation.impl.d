lib/experiments/exp_ablation.ml: Dataplane Exp_common Hspace List Metrics Mlpc Openflow Printf Rulegraph Sdn_util Sdnprobe Topogen Workloads
