lib/experiments/exp_fig8a.ml: Exp_common List Metrics Openflow Schemes Sdn_util Workloads
