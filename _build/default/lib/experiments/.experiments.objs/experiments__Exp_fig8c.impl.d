lib/experiments/exp_fig8c.ml: Exp_common List Metrics Openflow Printf Schemes Sdnprobe Workloads
