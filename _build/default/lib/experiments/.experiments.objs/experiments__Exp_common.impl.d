lib/experiments/exp_common.ml: Dataplane Printf Sdn_util Workloads
