lib/experiments/exp_table1.ml: Array Dataplane Exp_common Hashtbl Hspace List Metrics Openflow Option Schemes Sdn_util Sdnprobe Workloads
