lib/experiments/schemes.mli: Dataplane Openflow Sdnprobe
