lib/experiments/schemes.ml: Baselines List Sdn_util Sdnprobe
