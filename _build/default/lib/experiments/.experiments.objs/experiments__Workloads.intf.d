lib/experiments/workloads.mli: Dataplane Openflow Sdn_util
