lib/experiments/registry.ml: Exp_ablation Exp_common Exp_fig8a Exp_fig8b Exp_fig8c Exp_fig9 Exp_real_dataset Exp_table1 Exp_table2 List Printf String
