lib/experiments/workloads.ml: Array Dataplane Fun Hspace Lazy List Openflow Printf Rulegraph Sdn_util Sdngraph Topogen
