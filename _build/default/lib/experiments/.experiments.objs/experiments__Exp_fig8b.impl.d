lib/experiments/exp_fig8b.ml: Exp_common List Metrics Openflow Schemes Sdnprobe Workloads
