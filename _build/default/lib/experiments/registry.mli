(** Name-indexed access to every experiment, shared by the benchmark
    executable and the CLI. *)

type scale = Exp_common.scale = Quick | Full

val experiments : (string * string) list
(** [(name, description)] in presentation order. *)

val run : scale:scale -> string -> (unit, string) result
(** Run one experiment by name; [Error] lists valid names. *)

val run_all : scale:scale -> unit
