(** Detection parameters.

    Defaults follow the paper's evaluation setup: probes serialized at
    250 KB/s from the controller, detection threshold 3. Probe size,
    per-hop latency and per-round controller overhead parameterize the
    virtual-time model (the paper's testbed values are not published;
    these are typical OpenFlow figures and only scale absolute delays,
    not orderings). *)

type t = {
  threshold : int;  (** suspicion level that flags a switch (paper: 3) *)
  send_rate_bytes_per_s : int;  (** probe serialization rate (paper: 250 KB/s) *)
  probe_size_bytes : int;  (** bytes per test packet (default 100) *)
  per_hop_latency_us : int;  (** link + switch traversal latency (default 500) *)
  per_round_overhead_us : int;
      (** controller round-trip + processing per detection round
          (default 50 ms) *)
  max_rounds : int;  (** hard stop for the detection loop *)
}

val default : t

val with_threshold : int -> t -> t

val serialization_us : t -> packets:int -> int
(** Virtual time to push [packets] probes out of the controller. *)
