type t = {
  threshold : int;
  send_rate_bytes_per_s : int;
  probe_size_bytes : int;
  per_hop_latency_us : int;
  per_round_overhead_us : int;
  max_rounds : int;
}

let default =
  {
    threshold = 3;
    send_rate_bytes_per_s = 250_000;
    probe_size_bytes = 100;
    per_hop_latency_us = 500;
    per_round_overhead_us = 50_000;
    max_rounds = 200;
  }

let with_threshold threshold t = { t with threshold }

let serialization_us t ~packets =
  let bytes = packets * t.probe_size_bytes in
  int_of_float (1e6 *. float_of_int bytes /. float_of_int t.send_rate_bytes_per_s)
