type detection = { switch : int; time_s : float; round : int }

type t = {
  scheme : string;
  plan_size : int;
  generation_s : float;
  detections : detection list;
  packets_sent : int;
  bytes_sent : int;
  rounds : int;
  duration_s : float;
  suspicion_ranking : (int * int) list;
}

let flagged_switches t = List.sort compare (List.map (fun d -> d.switch) t.detections)

let detection_time t switch =
  List.find_opt (fun d -> d.switch = switch) t.detections
  |> Option.map (fun d -> d.time_s)

let time_to_detect_all t ~ground_truth =
  let times = List.map (detection_time t) ground_truth in
  if List.exists Option.is_none times then None
  else Some (List.fold_left (fun acc o -> max acc (Option.get o)) 0. times)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s: %d probes (gen %.3fs), %d rounds, %.2fs virtual, %d pkts/%d bytes, flagged: %a@]"
    t.scheme t.plan_size t.generation_s t.rounds t.duration_s t.packets_sent
    t.bytes_sent
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       Format.pp_print_int)
    (flagged_switches t)
