(** Outcome of one detection run, common to SDNProbe and the baseline
    schemes so the evaluation harness can tabulate them uniformly. *)

type detection = { switch : int; time_s : float; round : int }

type t = {
  scheme : string;
  plan_size : int;  (** test packets in the (initial) plan *)
  generation_s : float;  (** wall-clock pre-computation time *)
  detections : detection list;  (** in detection order *)
  packets_sent : int;  (** total probes injected, incl. re-sends/slices *)
  bytes_sent : int;
  rounds : int;
  duration_s : float;  (** virtual detection time *)
  suspicion_ranking : (int * int) list;  (** (rule, level), descending *)
}

val flagged_switches : t -> int list
(** Sorted. *)

val detection_time : t -> int -> float option
(** Virtual time at which a switch was flagged. *)

val time_to_detect_all : t -> ground_truth:int list -> float option
(** Time of the last ground-truth switch's detection; [None] if any
    ground-truth switch went undetected. *)

val pp : Format.formatter -> t -> unit
