(** The detection loop (Algorithm 2) against the data-plane emulator.

    Each round: install return traps for the active probes, serialize
    them at the configured controller rate (advancing the virtual
    clock), inject, and classify. A failed probe bumps the suspicion of
    every rule on its path and is sliced in two; a failed single-rule
    probe whose suspicion exceeds the threshold flags its switch. When a
    round produces no follow-up work, a new detection cycle starts from
    the full plan — re-drawn by [redraw] for Randomized SDNProbe. *)

type stop = detections:Report.detection list -> round:int -> time_s:float -> bool
(** Return true to end the run (evaluated between rounds). *)

val stop_never : stop

val stop_when_flagged : int list -> stop
(** Stop once all the given switches are flagged. *)

val stop_after_s : float -> stop

val stop_any : stop list -> stop

val run :
  ?stop:stop ->
  ?redraw:(cycle:int -> Probe.t list) ->
  ?name:string ->
  config:Config.t ->
  emulator:Dataplane.Emulator.t ->
  generation_s:float ->
  Probe.t list ->
  Report.t
(** Run detection with the given initial probes. [redraw ~cycle] (if
    given) supplies fresh probes when cycle [cycle >= 1] begins;
    otherwise the initial plan is reused. The emulator's faults are the
    ground truth being hunted; its clock is advanced by this function
    and left at the end-of-run time. *)

val detect : ?stop:stop -> ?mode:Plan.mode -> config:Config.t -> Dataplane.Emulator.t -> Report.t
(** Convenience: generate a plan for the emulator's network and run.
    [mode] defaults to [Plan.Static]; with [Plan.Randomized rng] the
    plan is re-drawn every cycle (Randomized SDNProbe). *)
