lib/core/config.mli:
