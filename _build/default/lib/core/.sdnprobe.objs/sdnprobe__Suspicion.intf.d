lib/core/suspicion.mli:
