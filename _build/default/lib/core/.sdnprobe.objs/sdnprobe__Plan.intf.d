lib/core/plan.mli: Mlpc Openflow Probe Rulegraph Sdn_util
