lib/core/probe.mli: Format Hspace Openflow
