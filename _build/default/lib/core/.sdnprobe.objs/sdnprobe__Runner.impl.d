lib/core/runner.ml: Config Dataplane List Openflow Plan Probe Report Suspicion
