lib/core/suspicion.ml: Hashtbl List Option
