lib/core/config.ml:
