lib/core/plan.ml: List Mlpc Openflow Probe Rulegraph Sdn_util Unix
