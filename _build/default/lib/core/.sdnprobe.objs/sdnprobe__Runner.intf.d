lib/core/runner.mli: Config Dataplane Plan Probe Report
