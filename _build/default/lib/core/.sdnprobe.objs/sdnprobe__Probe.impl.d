lib/core/probe.ml: Array Format Hspace List Openflow
