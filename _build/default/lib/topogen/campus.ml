module Topology = Openflow.Topology
module Network = Openflow.Network
module FE = Openflow.Flow_entry
module FT = Openflow.Flow_table
module Cube = Hspace.Cube
module Prng = Sdn_util.Prng

type stats = {
  table_sizes : (int * int) list;
  max_overlap : int;
  total_rules : int;
}

let header_len = 32
let family_bits = 10
let specific_extra_bits = 7

(* Cube for a family block (/family_bits) or a specific inside it
   (/family_bits + specific_extra_bits). *)
let family_cube fam =
  Cube.of_bits
    (Array.init header_len (fun k ->
         if k < family_bits then
           if fam land (1 lsl (family_bits - 1 - k)) <> 0 then Cube.One else Cube.Zero
         else Cube.Any))

let specific_cube fam ext =
  Cube.of_bits
    (Array.init header_len (fun k ->
         if k < family_bits then
           if fam land (1 lsl (family_bits - 1 - k)) <> 0 then Cube.One else Cube.Zero
         else if k < family_bits + specific_extra_bits then
           if ext land (1 lsl (family_bits + specific_extra_bits - 1 - k)) <> 0 then
             Cube.One
           else Cube.Zero
         else Cube.Any))

(* Split a table budget into aggregate+specific family sizes:
   first family carries [max_overlap] specifics; the rest draw small
   counts until the budget is met exactly. *)
let family_sizes rng ~budget ~max_overlap =
  let sizes = ref [ max_overlap ] in
  let used = ref (max_overlap + 1) in
  while !used < budget do
    let remaining = budget - !used in
    if remaining = 1 then begin
      (* A lone aggregate closes the budget. *)
      sizes := 0 :: !sizes;
      used := !used + 1
    end
    else begin
      let s = min (remaining - 1) (1 + Prng.int rng 8) in
      sizes := s :: !sizes;
      used := !used + s + 1
    end
  done;
  List.rev !sizes

(* A table structure: per family, the specific extensions it carries. *)
let make_structure rng ~budget ~max_overlap =
  let sizes = family_sizes rng ~budget ~max_overlap in
  List.mapi
    (fun fam specifics ->
      (fam, Prng.sample_without_replacement rng specifics (1 lsl specific_extra_bits)))
    sizes

(* Consecutive backbone routers carry largely the same routes, so core
   B's table extends core A's structure with [extra] additional
   specifics — this is what lets one test packet exercise a rule in
   each table (the paper's ~600 packets for 550 + 579 entries). *)
let extend_structure rng structure ~extra =
  let arr = Array.of_list (List.map (fun (f, es) -> (f, ref es)) structure) in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < extra * 100 do
    incr attempts;
    let f, exts = arr.(Prng.int rng (Array.length arr)) in
    ignore f;
    if List.length !exts < (1 lsl specific_extra_bits) - 1 then begin
      let ext = ref (Prng.int rng (1 lsl specific_extra_bits)) in
      while List.mem !ext !exts do
        ext := Prng.int rng (1 lsl specific_extra_bits)
      done;
      exts := !ext :: !exts;
      incr added
    end
  done;
  List.map (fun (f, es) -> (f, !es)) (Array.to_list arr)

let install_core_table net ~switch ~port structure =
  List.iter
    (fun (fam, exts) ->
      ignore
        (Network.add_entry net ~switch ~priority:10 ~match_:(family_cube fam)
           (FE.Output port));
      List.iter
        (fun ext ->
          ignore
            (Network.add_entry net ~switch ~priority:20 ~match_:(specific_cube fam ext)
               (FE.Output port)))
        exts)
    structure

let synthesize ?(table_a = 550) ?(table_b = 579) ?(max_overlap = 65) rng =
  (* edge0(0) - coreA(1) - coreB(2) - edge1(3) *)
  let topo = Topology.create ~n_switches:4 in
  Topology.add_link topo ~sw_a:0 ~port_a:1 ~sw_b:1 ~port_b:1;
  Topology.add_link topo ~sw_a:1 ~port_a:2 ~sw_b:2 ~port_b:1;
  Topology.add_link topo ~sw_a:2 ~port_a:2 ~sw_b:3 ~port_b:1;
  let net = Network.create ~header_len topo in
  (* Ingress: everything to core A. *)
  ignore
    (Network.add_entry net ~switch:0 ~priority:1 ~match_:(Cube.wildcard header_len)
       (FE.Output 1));
  let structure_a = make_structure rng ~budget:table_a ~max_overlap in
  let structure_b =
    if table_b >= table_a then extend_structure rng structure_a ~extra:(table_b - table_a)
    else Sdn_util.Misc.take table_b (make_structure rng ~budget:table_b ~max_overlap)
  in
  install_core_table net ~switch:1 ~port:2 structure_a;
  install_core_table net ~switch:2 ~port:2 structure_b;
  (* Egress delivers everything locally. *)
  ignore
    (Network.add_entry net ~switch:3 ~priority:1 ~match_:(Cube.wildcard header_len)
       FE.Drop);
  net

let stats_of net =
  let table_sizes = ref [] in
  let max_overlap = ref 0 in
  for sw = 0 to Network.n_switches net - 1 do
    let table = Network.table net ~switch:sw ~table:0 in
    let size = FT.size table in
    if size >= 10 then table_sizes := (sw, size) :: !table_sizes;
    List.iter
      (fun e ->
        let o = List.length (FT.higher_priority_overlaps table e) in
        if o > !max_overlap then max_overlap := o)
      (FT.entries table)
  done;
  {
    table_sizes = List.rev !table_sizes;
    max_overlap = !max_overlap;
    total_rules = Network.n_entries net;
  }
