module Topology = Openflow.Topology
module Prng = Sdn_util.Prng

let connect topo a b =
  Topology.add_link topo ~sw_a:a ~port_a:(Topology.fresh_port topo a) ~sw_b:b
    ~port_b:(Topology.fresh_port topo b)

(* Router-level ISP topologies (Rocketfuel-style) are long backbones
   with stub routers hanging off them: high diameter, few high-degree
   hubs. We build a backbone path over ~40% of the switches, add a few
   random chords, and attach the rest as (occasionally dual-homed)
   stubs. *)
let rocketfuel_like rng ?(links_per_switch = 2) ~n_switches () =
  if n_switches < 2 then invalid_arg "Topo_gen.rocketfuel_like: need >= 2 switches";
  ignore links_per_switch;
  let topo = Topology.create ~n_switches in
  let backbone = max 2 (2 * n_switches / 5) in
  for s = 0 to backbone - 2 do
    connect topo s (s + 1)
  done;
  (* Sparse chords shorten a few detours without collapsing diameter. *)
  let chords = max 1 (backbone / 8) in
  for _ = 1 to chords do
    let a = Prng.int rng backbone and b = Prng.int rng backbone in
    if abs (a - b) > 2 then
      let lo = min a b and hi = max a b in
      if Topology.port_towards topo ~src:lo ~dst:hi = None then connect topo lo hi
  done;
  (* Stubs: attach to a random backbone router; one in five dual-homes
     to a nearby second router. *)
  for s = backbone to n_switches - 1 do
    let primary = Prng.int rng backbone in
    connect topo s primary;
    if Prng.int rng 5 = 0 then begin
      let secondary = min (backbone - 1) (max 0 (primary + 1 + Prng.int rng 3 - 2)) in
      if secondary <> primary && Topology.port_towards topo ~src:s ~dst:secondary = None
      then connect topo s secondary
    end
  done;
  topo

let line ~n_switches =
  if n_switches < 1 then invalid_arg "Topo_gen.line";
  let topo = Topology.create ~n_switches in
  for s = 0 to n_switches - 2 do
    connect topo s (s + 1)
  done;
  topo

let fat_tree_like rng ~pods =
  if pods < 2 then invalid_arg "Topo_gen.fat_tree_like: need >= 2 pods";
  let cores = (pods / 2) + 1 in
  let topo = Topology.create ~n_switches:(pods + cores) in
  (* Core ring. *)
  for c = 0 to cores - 2 do
    connect topo (pods + c) (pods + c + 1)
  done;
  (* Each edge switch uplinks to two distinct cores. *)
  for e = 0 to pods - 1 do
    let c1 = Prng.int rng cores in
    let c2 = if cores = 1 then c1 else (c1 + 1 + Prng.int rng (cores - 1)) mod cores in
    connect topo e (pods + c1);
    if c2 <> c1 then connect topo e (pods + c2)
  done;
  topo
