lib/topogen/campus.ml: Array Hspace List Openflow Sdn_util
