lib/topogen/campus.mli: Openflow Sdn_util
