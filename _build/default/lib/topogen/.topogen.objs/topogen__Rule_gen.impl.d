lib/topogen/rule_gen.ml: Array Fun Hspace List Openflow Option Rulegraph Sdn_util Sdngraph
