lib/topogen/rule_gen.mli: Hspace Openflow Sdn_util
