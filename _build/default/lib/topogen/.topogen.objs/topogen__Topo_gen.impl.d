lib/topogen/topo_gen.ml: Openflow Sdn_util
