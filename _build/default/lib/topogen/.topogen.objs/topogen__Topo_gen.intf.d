lib/topogen/topo_gen.mli: Openflow Sdn_util
