(** Synthetic router-level topologies.

    The paper samples router-level topologies from the Rocketfuel
    dataset, which is not redistributable; {!rocketfuel_like} generates
    graphs with the same qualitative shape — sparse, connected, with a
    heavy-tailed degree distribution — via preferential attachment
    (each new router links to [links_per_switch] existing routers chosen
    proportionally to their degree). *)

val rocketfuel_like :
  Sdn_util.Prng.t -> ?links_per_switch:int -> n_switches:int -> unit -> Openflow.Topology.t
(** Connected preferential-attachment topology. [links_per_switch]
    defaults to 2 (average degree ≈ 4, matching the paper's Table II
    ratios of links to switches). Raises [Invalid_argument] when
    [n_switches < 2]. *)

val line : n_switches:int -> Openflow.Topology.t
(** Degenerate chain topology, mostly for tests. *)

val fat_tree_like : Sdn_util.Prng.t -> pods:int -> Openflow.Topology.t
(** Small two-layer datacenter-flavoured topology: [pods] edge switches
    each linked to two of [pods/2 + 1] core switches (cores are joined
    in a ring so the graph stays connected even for tiny pod counts). *)
