(** Synthetic stand-in for the paper's campus backbone dataset.

    §VIII-A describes the real dataset: part of a campus backbone with
    two routing tables of 550 and 579 forwarding entries, overlapping
    rules with a maximum overlap count of 65, for which SDNProbe
    generated 600 test packets and MiniSat found each overlapping
    rule's header in 0.5–2.4 ms. The dataset itself is not
    redistributable, so {!synthesize} builds a network with the same
    published statistics: an edge–core–core–edge backbone whose two core
    tables hold exactly 550 and 579 prefix entries, including
    aggregate-plus-specifics families that reproduce the overlap
    profile (one aggregate overlapped by up to [max_overlap]
    higher-priority specifics). *)

type stats = {
  table_sizes : (int * int) list;  (** (switch, entries) for core tables *)
  max_overlap : int;
      (** largest number of higher-priority overlapping rules above any
          single rule *)
  total_rules : int;
}

val synthesize :
  ?table_a:int ->
  ?table_b:int ->
  ?max_overlap:int ->
  Sdn_util.Prng.t ->
  Openflow.Network.t
(** Defaults: [table_a = 550], [table_b = 579], [max_overlap = 65]
    (the published numbers). *)

val stats_of : Openflow.Network.t -> stats
(** Measure the realized statistics (table sizes of the two largest
    tables, maximum overlap count). *)
