lib/baselines/common.ml: Dataplane Hashtbl Hspace List Openflow Rulegraph Sdnprobe
