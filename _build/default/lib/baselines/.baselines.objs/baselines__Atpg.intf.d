lib/baselines/atpg.mli: Dataplane Openflow Sdnprobe
