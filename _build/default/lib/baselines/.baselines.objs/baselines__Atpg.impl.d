lib/baselines/atpg.ml: Array Common Dataplane Fun Hashtbl Hspace List Openflow Option Rulegraph Sdn_util Sdngraph Sdnprobe Unix
