lib/baselines/per_rule.ml: Common Dataplane Hashtbl Hspace List Openflow Option Rulegraph Sdngraph Sdnprobe Unix
