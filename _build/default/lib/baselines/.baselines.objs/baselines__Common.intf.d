lib/baselines/common.mli: Dataplane Hspace Openflow Rulegraph Sdnprobe
