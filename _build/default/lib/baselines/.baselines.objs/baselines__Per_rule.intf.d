lib/baselines/per_rule.mli: Dataplane Openflow Sdnprobe
