(** The Per-rule Test baseline (Chi et al. [12], Monocle [31]).

    One test packet per flow entry: the probe for rule [r] is injected
    at [r]'s previous-hop rule (when one exists) and captured at [r]'s
    next-hop rule, so the tested path is at most three hops. On a
    failure the scheme blames the {e target} switch — it cannot tell
    which of the three switches on the short path actually misbehaved
    (§VII footnote 3), so a fault on a neighbouring rule frames the
    target: the paper's false-positive mechanism under multiple faults.

    The probe count equals the number of (testable) flow entries by
    construction — the paper's Figure 8(a) upper line. *)

val generate : Openflow.Network.t -> (Sdnprobe.Probe.t * int) list * float
(** Per-rule probes, each paired with the entry id it targets, and the
    wall-clock generation time. *)

val run :
  ?stop:Sdnprobe.Runner.stop ->
  config:Sdnprobe.Config.t ->
  Dataplane.Emulator.t ->
  Sdnprobe.Report.t
(** Detection loop: every round re-sends every probe; a failed probe
    bumps the suspicion of its target switch, flagged past the
    threshold. *)
