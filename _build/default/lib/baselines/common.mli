(** Shared plumbing for the baseline schemes: probe rounds against the
    emulator with the same trap mechanism and timing model as SDNProbe,
    so reports are directly comparable. *)

val send_round :
  config:Sdnprobe.Config.t ->
  emulator:Dataplane.Emulator.t ->
  Sdnprobe.Probe.t list ->
  (Sdnprobe.Probe.t * bool) list
(** Install traps, serialize and inject each probe (advancing the
    virtual clock per packet, then flight time and round overhead),
    remove traps; returns pass/fail per probe. *)

val switches_of_probe : Openflow.Network.t -> Sdnprobe.Probe.t -> int list
(** De-duplicated switches along the probe's rule sequence. *)

type header_allocator
(** Assigns deterministic {e pairwise-distinct} headers to tested
    paths. Distinctness matters for the baselines exactly as it does
    for SDNProbe (§VI): probes sharing a header can trip each other's
    return traps and corrupt localization. *)

val allocator : unit -> header_allocator

val unique_header :
  header_allocator ->
  Rulegraph.Rule_graph.t ->
  int list ->
  Hspace.Header.t option
(** Deterministic header traversing the given rule-graph vertex
    sequence, distinct from all headers previously drawn from this
    allocator whenever the header spaces permit; [None] if the path is
    illegal. *)
