module Emu = Dataplane.Emulator
module Clock = Dataplane.Clock
module Probe = Sdnprobe.Probe
module Config = Sdnprobe.Config
module FE = Openflow.Flow_entry

let send_round ~config ~emulator probes =
  let clock = Emu.clock emulator in
  List.iter
    (fun (p : Probe.t) ->
      Emu.install_trap emulator ~probe:p.Probe.id ~switch:p.Probe.terminal_switch
        ~rule:p.Probe.terminal_rule ~header:p.Probe.expected_header)
    probes;
  let per_packet_us = Config.serialization_us config ~packets:1 in
  let results =
    List.map
      (fun (p : Probe.t) ->
        Clock.advance_us clock per_packet_us;
        let r = Emu.inject emulator ~at:p.Probe.inject_switch p.Probe.header in
        let pass =
          match r.Emu.outcome with
          | Emu.Returned { probe; _ } -> probe = p.Probe.id
          | _ -> false
        in
        (p, pass))
      probes
  in
  let max_hops =
    List.fold_left (fun acc (p : Probe.t) -> max acc (Probe.hop_count p)) 0 probes
  in
  Clock.advance_us clock (max_hops * config.Config.per_hop_latency_us);
  Clock.advance_us clock config.Config.per_round_overhead_us;
  List.iter (fun (p : Probe.t) -> Emu.remove_probe_traps emulator ~probe:p.Probe.id) probes;
  results

let switches_of_probe net (p : Probe.t) =
  List.sort_uniq compare
    (List.map (fun r -> (Openflow.Network.entry net r).FE.switch) p.Probe.rules)

type header_allocator = {
  used : (string, unit) Hashtbl.t;
  mutable counter : int;
}

let allocator () = { used = Hashtbl.create 256; counter = 0 }

let unique_header alloc rg vertices =
  let hs = Rulegraph.Rule_graph.start_space rg vertices in
  match Hspace.Hs.cubes hs with
  | [] -> None
  | cube :: _ ->
      (* Walk the cube's members starting at a global counter so that
         identical start spaces (common for aggregate rules) yield
         distinct headers; cap the search and accept a duplicate when a
         tiny space is exhausted. *)
      let rec pick k attempts =
        let h = Hspace.Cube.nth_member cube k in
        let key = Hspace.Cube.to_string h in
        if (not (Hashtbl.mem alloc.used key)) || attempts > 256 then begin
          Hashtbl.replace alloc.used key ();
          alloc.counter <- k + 1;
          h
        end
        else pick (k + 1) (attempts + 1)
      in
      Some (Hspace.Header.of_cube (pick alloc.counter 0))
