(** The ATPG baseline (Zeng et al., ToN 2014), adapted to the SDN
    setting the paper evaluates it in.

    {b Generation.} ATPG reduces test-packet selection to minimum set
    cover and solves it greedily: enumerate candidate end-to-end legal
    paths (source rules to sink rules of the rule graph), then pick the
    path covering the most uncovered rules until every testable rule is
    covered. Greedy MSC is the paper's explanation for ATPG sending
    ~30% more packets than SDNProbe's exact MLPC (Fig. 8a); unselected
    candidates are kept as a pool for localization.

    {b Localization} is intersection-based (§VII): the suspects each
    round are the switches in the intersection of the failed paths
    (pairwise intersections when the global intersection is empty —
    the multiple-fault case, where benign switches at crossings get
    framed). Suspicion accumulates per round and a switch is flagged
    past the threshold. When suspects cannot be narrowed, ATPG computes
    {e additional test packets} from the candidate pool; that
    recomputation is charged to the virtual clock
    ([compute_us_per_rule] × rules on failed paths, default 150 µs),
    reproducing ATPG's localization-delay penalty (Fig. 8b/8c). *)

type gen = {
  probes : Sdnprobe.Probe.t list;
  pool : Sdnprobe.Probe.t list;  (** unselected candidates, for refinement *)
  generation_s : float;
}

val generate : ?max_candidates:int -> Openflow.Network.t -> gen

val run :
  ?stop:Sdnprobe.Runner.stop ->
  ?compute_us_per_rule:int ->
  config:Sdnprobe.Config.t ->
  Dataplane.Emulator.t ->
  Sdnprobe.Report.t
