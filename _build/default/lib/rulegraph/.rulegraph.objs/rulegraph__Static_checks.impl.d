lib/rulegraph/static_checks.ml: Array Format Hashtbl Hspace List Openflow Sdngraph
