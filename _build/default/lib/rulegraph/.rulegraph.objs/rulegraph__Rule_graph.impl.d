lib/rulegraph/rule_graph.ml: Array Fun Hashtbl Hspace List Openflow Option Queue Sdngraph
