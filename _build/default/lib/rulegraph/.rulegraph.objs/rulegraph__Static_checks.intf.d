lib/rulegraph/static_checks.mli: Format Hspace Openflow
