lib/rulegraph/rule_graph.mli: Hspace Openflow Sdngraph
