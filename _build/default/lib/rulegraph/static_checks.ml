module Hs = Hspace.Hs
module FE = Openflow.Flow_entry
module Network = Openflow.Network
module Topology = Openflow.Topology
module Digraph = Sdngraph.Digraph

type issue =
  | Forwarding_loop of int list
  | Blackhole of { rule : int; next_switch : int; space : Hs.t }
  | Shadowed_rule of int

(* Build the base rule graph without rejecting cycles: Rule_graph.build
   raises on loops, so the loop check replicates its edge construction
   on top of the per-rule spaces. *)
let base_edges net entries inputs outputs =
  let index_of = Hashtbl.create (Array.length entries) in
  Array.iteri (fun i (e : FE.t) -> Hashtbl.add index_of e.id i) entries;
  let g = Digraph.create (Array.length entries) in
  Array.iteri
    (fun i (r : FE.t) ->
      let candidates =
        match r.action with
        | FE.Drop -> []
        | FE.Output _ -> (
            match Network.next_switch net r with
            | None -> []
            | Some sw -> Openflow.Flow_table.entries (Network.table net ~switch:sw ~table:0))
        | FE.Goto_table tb ->
            Openflow.Flow_table.entries (Network.table net ~switch:r.switch ~table:tb)
      in
      List.iter
        (fun (q : FE.t) ->
          let j = Hashtbl.find index_of q.id in
          if not (Hs.is_empty (Hs.inter outputs.(i) inputs.(j))) then
            Digraph.add_edge g i j)
        candidates)
    entries;
  g

let check net =
  let entries = Array.of_list (Network.all_entries net) in
  let inputs = Array.map (Network.input_space net) entries in
  let outputs = Array.map (Network.output_space net) entries in
  let issues = ref [] in
  (* Shadowed rules. *)
  Array.iteri
    (fun i (e : FE.t) ->
      if Hs.is_empty inputs.(i) then issues := Shadowed_rule e.id :: !issues)
    entries;
  (* Blackholes: per forwarding rule, the part of its output space no
     entry of the next hop's first table matches. *)
  Array.iteri
    (fun i (r : FE.t) ->
      match r.action with
      | FE.Output _ -> (
          match Network.next_switch net r with
          | None -> ()
          | Some sw ->
              let absorbed =
                List.fold_left
                  (fun acc (q : FE.t) -> Hs.diff_cube acc q.match_)
                  outputs.(i)
                  (Openflow.Flow_table.entries (Network.table net ~switch:sw ~table:0))
              in
              if not (Hs.is_empty absorbed) then
                issues := Blackhole { rule = r.id; next_switch = sw; space = absorbed } :: !issues)
      | FE.Drop | FE.Goto_table _ -> ())
    entries;
  (* Forwarding loops. *)
  let g = base_edges net entries inputs outputs in
  (match Digraph.find_cycle g with
  | Some cycle ->
      issues := Forwarding_loop (List.map (fun v -> entries.(v).FE.id) cycle) :: !issues
  | None -> ());
  (* Loops first, then blackholes, then shadows. *)
  let weight = function
    | Forwarding_loop _ -> 0
    | Blackhole _ -> 1
    | Shadowed_rule _ -> 2
  in
  List.stable_sort (fun a b -> compare (weight a) (weight b)) (List.rev !issues)

let is_clean net = check net = []

let pp_issue net fmt = function
  | Forwarding_loop ids ->
      Format.fprintf fmt "forwarding loop through entries %a"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f " -> ")
           Format.pp_print_int)
        ids
  | Blackhole { rule; next_switch; space } ->
      Format.fprintf fmt "blackhole: entry %d (sw%d) sends %a to sw%d, which drops it"
        rule
        (Network.entry net rule).FE.switch
        Hs.pp space next_switch
  | Shadowed_rule id ->
      Format.fprintf fmt "shadowed rule: entry %d (sw%d) can never match" id
        (Network.entry net id).FE.switch
