(** OpenFlow flow entries ("rules").

    An entry lives in one flow table of one switch and carries the four
    fields the paper's rule-graph vertices are labelled with: match
    field, set field, output action and priority (§V-A). The set field
    is a ternary cube whose fixed bits overwrite the packet header —
    the all-wildcard default leaves the packet unchanged. *)

type action =
  | Output of int  (** forward out of a switch port *)
  | Drop
  | Goto_table of int  (** continue matching in a later table *)

type t = {
  id : int;  (** globally unique across the network *)
  switch : int;  (** owning switch *)
  table : int;  (** flow-table index within the switch *)
  priority : int;  (** higher wins among matching entries of a table *)
  match_ : Hspace.Cube.t;
  set_field : Hspace.Cube.t;
  action : action;
}

val make :
  id:int ->
  switch:int ->
  table:int ->
  priority:int ->
  match_:Hspace.Cube.t ->
  ?set_field:Hspace.Cube.t ->
  action ->
  t
(** [set_field] defaults to the identity (all wildcards). Raises
    [Invalid_argument] if match and set fields have different lengths. *)

val header_length : t -> int

val is_identity_set : t -> bool

val matches : t -> Hspace.Header.t -> bool

val apply : t -> Hspace.Header.t -> Hspace.Header.t
(** Rewrite a header through the entry's set field. *)

val overlaps : t -> t -> bool
(** [overlaps a b]: same switch and table, and intersecting match
    fields. Combined with priority this is the paper's [>_o] relation:
    [b >_o a] iff [overlaps a b && b.priority > a.priority]. *)

val pp : Format.formatter -> t -> unit

val pp_action : Format.formatter -> action -> unit
