lib/openflow/flow_entry.ml: Format Hspace
