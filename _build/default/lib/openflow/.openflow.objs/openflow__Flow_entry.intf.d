lib/openflow/flow_entry.mli: Format Hspace
