lib/openflow/network.mli: Flow_entry Flow_table Format Hspace Topology
