lib/openflow/serial.ml: Buffer Flow_entry Hspace List Network Option Printf String Topology
