lib/openflow/topology.ml: Hashtbl List Option Sdngraph
