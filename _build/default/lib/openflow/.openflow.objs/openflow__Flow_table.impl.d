lib/openflow/flow_table.ml: Flow_entry Hspace List
