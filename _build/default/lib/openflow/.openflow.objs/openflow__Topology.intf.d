lib/openflow/topology.mli: Sdngraph
