lib/openflow/network.ml: Array Flow_entry Flow_table Format Hashtbl Hspace List Option Topology
