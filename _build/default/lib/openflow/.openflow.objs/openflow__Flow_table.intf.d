lib/openflow/flow_table.mli: Flow_entry Hspace
