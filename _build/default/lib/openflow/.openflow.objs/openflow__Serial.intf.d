lib/openflow/serial.mli: Network
