module Hs = Hspace.Hs

type t = Flow_entry.t list (* sorted by priority desc, id asc *)

let order (a : Flow_entry.t) (b : Flow_entry.t) =
  match compare b.priority a.priority with 0 -> compare a.id b.id | c -> c

let empty = []

let of_entries es = List.sort order es

let entries t = t

let size = List.length

let add t e = List.merge order [ e ] t

let remove t id = List.filter (fun (e : Flow_entry.t) -> e.id <> id) t

let lookup t header = List.find_opt (fun e -> Flow_entry.matches e header) t

let precedes (a : Flow_entry.t) (b : Flow_entry.t) = order a b < 0

let higher_priority_overlaps t (r : Flow_entry.t) =
  List.filter
    (fun (q : Flow_entry.t) ->
      q.id <> r.id && precedes q r
      && not (Hspace.Cube.disjoint q.match_ r.match_))
    t

let input_space t (r : Flow_entry.t) =
  let len = Flow_entry.header_length r in
  List.fold_left
    (fun acc (q : Flow_entry.t) -> Hs.diff_cube acc q.match_)
    (Hs.of_cubes len [ r.match_ ])
    (higher_priority_overlaps t r)

let output_space t (r : Flow_entry.t) =
  Hs.apply_set_field ~set:r.set_field (input_space t r)
