module Cube = Hspace.Cube

let action_to_string = function
  | Flow_entry.Output p -> Printf.sprintf "output:%d" p
  | Flow_entry.Drop -> "drop"
  | Flow_entry.Goto_table t -> Printf.sprintf "goto:%d" t

let to_string net =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "sdnprobe-policy 1";
  line "header_len %d" (Network.header_len net);
  line "switches %d" (Network.n_switches net);
  line "tables %d" (Network.n_tables net);
  List.iter
    (fun (l : Topology.link) ->
      line "link %d %d %d %d" l.Topology.sw_a l.Topology.port_a l.Topology.sw_b
        l.Topology.port_b)
    (Topology.links (Network.topology net));
  List.iter
    (fun (e : Flow_entry.t) ->
      let set =
        if Flow_entry.is_identity_set e then ""
        else Printf.sprintf " set=%s" (Cube.to_string e.set_field)
      in
      line "entry switch=%d table=%d priority=%d match=%s action=%s%s" e.switch
        e.table e.priority (Cube.to_string e.match_) (action_to_string e.action) set)
    (Network.all_entries net);
  Buffer.contents buf

exception Parse of string

let parse_action s =
  match String.split_on_char ':' s with
  | [ "drop" ] -> Flow_entry.Drop
  | [ "output"; p ] -> Flow_entry.Output (int_of_string p)
  | [ "goto"; t ] -> Flow_entry.Goto_table (int_of_string t)
  | _ -> raise (Parse (Printf.sprintf "bad action %S" s))

let parse_kv s =
  match String.index_opt s '=' with
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> raise (Parse (Printf.sprintf "expected key=value, got %S" s))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let header_len = ref 0 and switches = ref 0 and tables = ref 1 in
  let links = ref [] and entries = ref [] in
  let magic_seen = ref false in
  try
    List.iteri
      (fun lineno raw ->
        let lineno = lineno + 1 in
        let fail fmt =
          Printf.ksprintf (fun s -> raise (Parse (Printf.sprintf "line %d: %s" lineno s))) fmt
        in
        let s = String.trim raw in
        if s = "" || s.[0] = '#' then ()
        else
          match String.split_on_char ' ' s |> List.filter (fun w -> w <> "") with
          | [ "sdnprobe-policy"; "1" ] -> magic_seen := true
          | [ "sdnprobe-policy"; v ] -> fail "unsupported version %s" v
          | [ "header_len"; v ] -> header_len := int_of_string v
          | [ "switches"; v ] -> switches := int_of_string v
          | [ "tables"; v ] -> tables := int_of_string v
          | "link" :: rest -> (
              match List.map int_of_string rest with
              | [ a; pa; b; pb ] -> links := (a, pa, b, pb) :: !links
              | _ -> fail "link needs 4 integers")
          | "entry" :: kvs ->
              let assoc = List.map parse_kv kvs in
              let get k =
                match List.assoc_opt k assoc with
                | Some v -> v
                | None -> fail "entry missing %s" k
              in
              let set_field =
                Option.map Cube.of_string (List.assoc_opt "set" assoc)
              in
              entries :=
                ( int_of_string (get "switch"),
                  int_of_string (get "table"),
                  int_of_string (get "priority"),
                  Cube.of_string (get "match"),
                  set_field,
                  parse_action (get "action") )
                :: !entries
          | w :: _ -> fail "unknown directive %S" w
          | [] -> ())
      lines;
    if not !magic_seen then raise (Parse "missing sdnprobe-policy header");
    if !header_len <= 0 then raise (Parse "missing or invalid header_len");
    let topo = Topology.create ~n_switches:!switches in
    List.iter
      (fun (a, pa, b, pb) -> Topology.add_link topo ~sw_a:a ~port_a:pa ~sw_b:b ~port_b:pb)
      (List.rev !links);
    let net = Network.create ~header_len:!header_len ~tables_per_switch:!tables topo in
    List.iter
      (fun (switch, table, priority, match_, set_field, action) ->
        ignore (Network.add_entry net ~switch ~table ~priority ~match_ ?set_field action))
      (List.rev !entries);
    Ok net
  with
  | Parse msg -> Error msg
  | Invalid_argument msg -> Error msg
  | Failure msg -> Error msg

let save net ~path =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc

let load ~path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
