(** The controller's view of the whole network: topology plus every
    switch's flow tables.

    This is the input to test-packet generation (§V) and the ground
    truth the emulator deviates from when faults are injected. Entry ids
    are allocated by the network and unique across switches. *)

type t

val create : header_len:int -> ?tables_per_switch:int -> Topology.t -> t
(** [tables_per_switch] defaults to 1. *)

val header_len : t -> int

val topology : t -> Topology.t

val n_switches : t -> int

val n_tables : t -> int

val add_entry :
  t ->
  switch:int ->
  ?table:int ->
  priority:int ->
  match_:Hspace.Cube.t ->
  ?set_field:Hspace.Cube.t ->
  Flow_entry.action ->
  Flow_entry.t
(** Install a new entry (fresh id) and return it. Raises
    [Invalid_argument] for out-of-range switch/table, a match length
    different from [header_len], an [Output] port with no attached link,
    or a [Goto_table] that does not go to a strictly later table. *)

val remove_entry : t -> int -> unit

val entry : t -> int -> Flow_entry.t
(** Raises [Not_found]. *)

val find_entry : t -> int -> Flow_entry.t option

val all_entries : t -> Flow_entry.t list
(** Ascending by id. *)

val n_entries : t -> int

val table : t -> switch:int -> table:int -> Flow_table.t

val switch_entries : t -> int -> Flow_entry.t list

val input_space : t -> Flow_entry.t -> Hspace.Hs.t
(** [r.in] within the entry's own table (§V-A). *)

val output_space : t -> Flow_entry.t -> Hspace.Hs.t

val next_switch : t -> Flow_entry.t -> int option
(** The switch reached by the entry's [Output] port, if the action is an
    output onto a live link. *)

val pp_summary : Format.formatter -> t -> unit
