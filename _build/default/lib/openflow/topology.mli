(** Physical switch topology: bidirectional links between switch ports.

    A link connects port [pa] of switch [a] to port [pb] of switch [b];
    the emulator and the rule-graph builder resolve "output to port p of
    switch s" through {!peer}. Port numbers start at 1 and are unique
    per switch side of a link. *)

type link = { sw_a : int; port_a : int; sw_b : int; port_b : int }

type t

val create : n_switches:int -> t

val n_switches : t -> int

val add_link : t -> sw_a:int -> port_a:int -> sw_b:int -> port_b:int -> unit
(** Raises [Invalid_argument] on out-of-range switches, self-links, or a
    port already in use on either side. *)

val links : t -> link list

val n_links : t -> int

val peer : t -> sw:int -> port:int -> (int * int) option
(** [peer t ~sw ~port] is the [(switch, port)] on the other end of the
    link attached to [port] of [sw], if any. *)

val ports_of : t -> int -> int list
(** Ports of a switch that are attached to links, ascending. *)

val neighbors : t -> int -> int list
(** Adjacent switches (each listed once), ascending. *)

val port_towards : t -> src:int -> dst:int -> int option
(** A port of [src] whose link reaches [dst] directly, if adjacent. *)

val to_digraph : t -> Sdngraph.Digraph.t
(** Switch-level digraph with an edge in both directions per link,
    weight 1. *)

val fresh_port : t -> int -> int
(** Smallest port number of the switch not yet attached to a link. *)
