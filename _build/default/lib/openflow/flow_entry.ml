module Cube = Hspace.Cube
module Header = Hspace.Header

type action = Output of int | Drop | Goto_table of int

type t = {
  id : int;
  switch : int;
  table : int;
  priority : int;
  match_ : Cube.t;
  set_field : Cube.t;
  action : action;
}

let make ~id ~switch ~table ~priority ~match_ ?set_field action =
  let set_field =
    match set_field with Some s -> s | None -> Cube.wildcard (Cube.length match_)
  in
  if Cube.length set_field <> Cube.length match_ then
    invalid_arg "Flow_entry.make: set field length mismatch";
  { id; switch; table; priority; match_; set_field; action }

let header_length t = Cube.length t.match_

let is_identity_set t = Cube.wildcard_count t.set_field = Cube.length t.set_field

let matches t header = Header.matches header t.match_

let apply t header = Header.apply_set_field ~set:t.set_field header

let overlaps a b =
  a.switch = b.switch && a.table = b.table && not (Cube.disjoint a.match_ b.match_)

let pp_action fmt = function
  | Output port -> Format.fprintf fmt "output:%d" port
  | Drop -> Format.pp_print_string fmt "drop"
  | Goto_table t -> Format.fprintf fmt "goto:%d" t

let pp fmt t =
  Format.fprintf fmt "[#%d sw%d t%d p%d match=%a set=%a %a]" t.id t.switch
    t.table t.priority Cube.pp t.match_ Cube.pp t.set_field pp_action t.action
