type link = { sw_a : int; port_a : int; sw_b : int; port_b : int }

type t = {
  n : int;
  mutable links : link list; (* reverse insertion order *)
  peers : (int * int, int * int) Hashtbl.t; (* (sw, port) -> (sw, port) *)
}

let create ~n_switches =
  if n_switches < 0 then invalid_arg "Topology.create";
  { n = n_switches; links = []; peers = Hashtbl.create 64 }

let n_switches t = t.n

let check_sw t s = if s < 0 || s >= t.n then invalid_arg "Topology: switch out of range"

let add_link t ~sw_a ~port_a ~sw_b ~port_b =
  check_sw t sw_a;
  check_sw t sw_b;
  if sw_a = sw_b then invalid_arg "Topology.add_link: self-link";
  if port_a <= 0 || port_b <= 0 then invalid_arg "Topology.add_link: ports start at 1";
  if Hashtbl.mem t.peers (sw_a, port_a) then
    invalid_arg "Topology.add_link: port in use on side a";
  if Hashtbl.mem t.peers (sw_b, port_b) then
    invalid_arg "Topology.add_link: port in use on side b";
  Hashtbl.add t.peers (sw_a, port_a) (sw_b, port_b);
  Hashtbl.add t.peers (sw_b, port_b) (sw_a, port_a);
  t.links <- { sw_a; port_a; sw_b; port_b } :: t.links

let links t = List.rev t.links

let n_links t = List.length t.links

let peer t ~sw ~port = Hashtbl.find_opt t.peers (sw, port)

let ports_of t sw =
  check_sw t sw;
  Hashtbl.fold (fun (s, p) _ acc -> if s = sw then p :: acc else acc) t.peers []
  |> List.sort compare

let neighbors t sw =
  List.filter_map (fun p -> Option.map fst (peer t ~sw ~port:p)) (ports_of t sw)
  |> List.sort_uniq compare

let port_towards t ~src ~dst =
  List.find_opt
    (fun p -> match peer t ~sw:src ~port:p with Some (s, _) -> s = dst | None -> false)
    (ports_of t src)

let to_digraph t =
  let g = Sdngraph.Digraph.create t.n in
  List.iter
    (fun l ->
      Sdngraph.Digraph.add_edge g l.sw_a l.sw_b;
      Sdngraph.Digraph.add_edge g l.sw_b l.sw_a)
    t.links;
  g

let fresh_port t sw =
  let used = ports_of t sw in
  let rec loop p = if List.mem p used then loop (p + 1) else p in
  loop 1
