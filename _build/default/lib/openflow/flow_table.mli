(** A single OpenFlow flow table: a priority-ordered set of entries.

    Lookup returns the highest-priority matching entry; ties are broken
    by lower entry id (OpenFlow leaves equal-priority overlap undefined —
    fixing a deterministic order keeps the emulator and the analytic
    rule graph consistent). *)

type t

val empty : t

val of_entries : Flow_entry.t list -> t
(** Entries are sorted by (priority desc, id asc). *)

val entries : t -> Flow_entry.t list
(** In lookup order. *)

val size : t -> int

val add : t -> Flow_entry.t -> t

val remove : t -> int -> t
(** Remove by entry id (no-op when absent). *)

val lookup : t -> Hspace.Header.t -> Flow_entry.t option
(** First match in lookup order. *)

val higher_priority_overlaps : t -> Flow_entry.t -> Flow_entry.t list
(** The paper's overlapping rules [q >_o r]: entries of this table with
    strictly higher lookup precedence whose match intersects [r]'s. *)

val input_space : t -> Flow_entry.t -> Hspace.Hs.t
(** [r.in = r.m − ∪ { q.m | q >_o r }] (§V-A). *)

val output_space : t -> Flow_entry.t -> Hspace.Hs.t
(** [r.out = T(r.in, r.s)]. *)
