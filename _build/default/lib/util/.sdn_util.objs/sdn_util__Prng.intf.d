lib/util/prng.mli:
