lib/util/misc.ml: Array Hashtbl List Unix
