lib/util/misc.mli:
