(** Deterministic pseudo-random number generator (splitmix64).

    All randomized components of the reproduction draw from this generator
    so that every experiment is reproducible from a single integer seed.
    The generator is [splitmix64] (Steele, Lea & Flood 2014): a 64-bit
    state advanced by a Weyl sequence and finalized with a mixing
    function. It is fast, passes BigCrush, and — unlike [Stdlib.Random] —
    its output is stable across OCaml releases. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator from [seed]. Two generators
    created from the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator seeded from it,
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bit : t -> int
(** [bit t] is 0 or 1. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Functional shuffle of a list. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument]
    on an empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)]. Requires [k <= n]. The result is sorted. *)
