lib/headerspace/hs.mli: Cube Format Sdn_util
