lib/headerspace/cube.ml: Array Format Hashtbl Int64 List Printf Sdn_util Stdlib String
