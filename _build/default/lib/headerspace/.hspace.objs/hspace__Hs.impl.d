lib/headerspace/hs.ml: Cube Format List Sdn_util
