lib/headerspace/header.mli: Cube Format Sdn_util
