lib/headerspace/header.ml: Cube
