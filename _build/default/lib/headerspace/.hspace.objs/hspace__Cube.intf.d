lib/headerspace/cube.mli: Format Sdn_util
