(** Concrete packet headers.

    A header is a fully-fixed {!Cube} (no wildcard positions). This thin
    module enforces concreteness at construction so the data-plane
    emulator never processes a partially-specified packet. *)

type t = private Cube.t
(** Concrete header; coercible to [Cube.t] with [(h :> Cube.t)]. *)

val of_cube : Cube.t -> t
(** Raises [Invalid_argument] if the cube has wildcards. *)

val of_string : string -> t
(** Parse a fully-specified bit string ("010011..."). *)

val to_string : t -> string

val length : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val get : t -> int -> bool
(** Bit value at a position. *)

val matches : t -> Cube.t -> bool
(** [matches h m] iff [h] lies in the cube [m]. *)

val apply_set_field : set:Cube.t -> t -> t
(** Rewrite fixed positions of [set] into the header. *)

val sample : Sdn_util.Prng.t -> Cube.t -> t
(** Random concrete member of a cube. *)

val pp : Format.formatter -> t -> unit
