type t = Cube.t

let of_cube c =
  if not (Cube.is_concrete c) then invalid_arg "Header.of_cube: cube has wildcards";
  c

let of_string s = of_cube (Cube.of_string s)

let to_string = Cube.to_string

let length = Cube.length

let equal = Cube.equal

let compare = Cube.compare

let get h k = match Cube.get h k with
  | Cube.One -> true
  | Cube.Zero -> false
  | Cube.Any -> assert false

let matches h m = Cube.member ~header:h m

let apply_set_field ~set h = Cube.apply_set_field ~set h

let sample rng c = Cube.sample rng c

let pp = Cube.pp
