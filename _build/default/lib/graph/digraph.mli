(** Directed graphs over integer vertices [0 .. n-1].

    Mutable adjacency-list digraph with optional edge weights (default
    weight 1.0). Parallel edges are ignored on insertion; weights are
    those of the first insertion. Used for rule graphs, topologies and
    the bipartite transformations of the MLPC solver. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices. *)

val n_vertices : t -> int

val n_edges : t -> int

val add_edge : ?weight:float -> t -> int -> int -> unit
(** [add_edge g u v] inserts the edge [u -> v]. No-op if present.
    Raises [Invalid_argument] if a vertex is out of range. *)

val mem_edge : t -> int -> int -> bool

val weight : t -> int -> int -> float option

val succ : t -> int -> int list
(** Successors in insertion order. *)

val succ_weighted : t -> int -> (int * float) list

val pred : t -> int -> int list
(** Predecessors (computed lazily and cached; invalidated on edge
    insertion). *)

val in_degree : t -> int -> int

val out_degree : t -> int -> int

val edges : t -> (int * int) list
(** All edges, grouped by source. *)

val transpose : t -> t

val copy : t -> t

val iter_edges : (int -> int -> unit) -> t -> unit

val fold_vertices : ('a -> int -> 'a) -> 'a -> t -> 'a

val sources : t -> int list
(** Vertices with in-degree 0. *)

val sinks : t -> int list
(** Vertices with out-degree 0. *)

val reachable : t -> int -> bool array
(** BFS reachability from a vertex (includes the vertex itself). *)

val topological_sort : t -> int list option
(** Kahn's algorithm: [None] iff the graph has a cycle. *)

val has_cycle : t -> bool

val find_cycle : t -> int list option
(** A vertex sequence forming a directed cycle, if any. *)

val is_connected_undirected : t -> bool
(** Connectivity ignoring edge direction (vacuously true when empty). *)

val pp : Format.formatter -> t -> unit
