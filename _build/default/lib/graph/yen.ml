let path_weight g path =
  let rec loop = function
    | [] | [ _ ] -> 0.
    | u :: (v :: _ as rest) -> (
        match Digraph.weight g u v with
        | Some w -> w +. loop rest
        | None -> invalid_arg "Yen.path_weight: missing edge")
  in
  loop path

let k_shortest g ~src ~dst ~k =
  if k <= 0 then []
  else
    match Shortest_path.shortest_path g src dst with
    | None -> []
    | Some first ->
        let accepted = ref [ first ] in
        let n = Digraph.n_vertices g in
        (* Candidate pool keyed by weight; paths may repeat, dedup on pop. *)
        let candidates = Heap.create () in
        let seen_candidate = Hashtbl.create 16 in
        let rec take n l =
          match (n, l) with
          | 0, _ | _, [] -> []
          | n, x :: rest -> x :: take (n - 1) rest
        in
        let continue = ref (List.length !accepted < k) in
        while !continue do
          let prev = List.hd !accepted in
          let prev_len = List.length prev in
          (* Spur from every vertex of the previous path except the last. *)
          for i = 0 to prev_len - 2 do
            let root = take (i + 1) prev in
            let spur = List.nth prev i in
            (* Remove edges used by accepted paths sharing this root. *)
            let blocked_edges =
              List.filter_map
                (fun p ->
                  if List.length p > i + 1 && take (i + 1) p = root then
                    Some (List.nth p i, List.nth p (i + 1))
                  else None)
                !accepted
            in
            (* Remove root vertices except the spur node. *)
            let blocked_vertices = Array.make n false in
            List.iteri (fun j v -> if j < i then blocked_vertices.(v) <- true) root;
            let tree =
              Shortest_path.dijkstra ~blocked_vertices ~blocked_edges g spur
            in
            match Shortest_path.path_to tree dst with
            | None -> ()
            | Some spur_path ->
                let total = root @ List.tl spur_path in
                if not (Hashtbl.mem seen_candidate total)
                   && not (List.mem total !accepted)
                then begin
                  Hashtbl.add seen_candidate total ();
                  Heap.push candidates (path_weight g total) total
                end
          done;
          (match Heap.pop_min candidates with
          | None -> continue := false
          | Some (_, best) ->
              Hashtbl.remove seen_candidate best;
              accepted := best :: !accepted;
              if List.length !accepted >= k then continue := false)
        done;
        List.rev !accepted
