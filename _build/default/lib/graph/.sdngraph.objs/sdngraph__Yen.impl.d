lib/graph/yen.ml: Array Digraph Hashtbl Heap List Shortest_path
