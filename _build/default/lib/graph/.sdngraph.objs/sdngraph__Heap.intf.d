lib/graph/heap.mli:
