lib/graph/rand_matching.mli: Hopcroft_karp Sdn_util
