lib/graph/shortest_path.ml: Array Digraph Heap List
