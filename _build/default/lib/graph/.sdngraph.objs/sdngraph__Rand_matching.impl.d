lib/graph/rand_matching.ml: Array Hopcroft_karp List Sdn_util
