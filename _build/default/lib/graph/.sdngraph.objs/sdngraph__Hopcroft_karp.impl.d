lib/graph/hopcroft_karp.ml: Array List Queue
