lib/graph/digraph.ml: Array Format Fun List Queue
