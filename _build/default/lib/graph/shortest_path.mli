(** Single-source shortest paths (Dijkstra). Edge weights must be
    non-negative. *)

type tree = {
  dist : float array;  (** infinity when unreachable *)
  parent : int array;  (** -1 for the source and unreachable vertices *)
}

val dijkstra :
  ?blocked_vertices:bool array ->
  ?blocked_edges:(int * int) list ->
  Digraph.t ->
  int ->
  tree
(** Shortest-path tree from a source. [blocked_vertices.(v)] removes [v]
    (the source must not be blocked); [blocked_edges] removes specific
    edges — both used by Yen's algorithm for spur computations. *)

val path_to : tree -> int -> int list option
(** Reconstruct the source-to-target vertex sequence; [None] when
    unreachable. *)

val shortest_path : Digraph.t -> int -> int -> int list option
(** Convenience: vertex sequence of a shortest path. *)
