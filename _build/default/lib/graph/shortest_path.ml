type tree = { dist : float array; parent : int array }

let dijkstra ?blocked_vertices ?(blocked_edges = []) g src =
  let n = Digraph.n_vertices g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let blocked v =
    match blocked_vertices with Some b -> b.(v) | None -> false
  in
  let edge_blocked u v = List.mem (u, v) blocked_edges in
  let heap = Heap.create () in
  dist.(src) <- 0.;
  Heap.push heap 0. src;
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
        if not settled.(u) && d <= dist.(u) then begin
          settled.(u) <- true;
          List.iter
            (fun (v, w) ->
              if (not (blocked v)) && (not (edge_blocked u v)) && not settled.(v)
              then begin
                let nd = dist.(u) +. w in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  parent.(v) <- u;
                  Heap.push heap nd v
                end
              end)
            (Digraph.succ_weighted g u)
        end;
        loop ()
  in
  loop ();
  { dist; parent }

let path_to tree target =
  if tree.dist.(target) = infinity then None
  else begin
    let rec build v acc = if tree.parent.(v) = -1 then v :: acc else build tree.parent.(v) (v :: acc) in
    Some (build target [])
  end

let shortest_path g src dst = path_to (dijkstra g src) dst
