type 'a entry = { key : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let is_empty h = h.size = 0

let size h = h.size

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).key < h.data.(parent).key then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.data.(l).key < h.data.(!smallest).key then smallest := l;
  if r < h.size && h.data.(r).key < h.data.(!smallest).key then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h key value =
  let entry = { key; value } in
  if h.size >= Array.length h.data then begin
    let ncap = max 8 (2 * Array.length h.data) in
    let data = Array.make ncap entry in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop_min h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.key, top.value)
  end

let peek_min h = if h.size = 0 then None else Some (h.data.(0).key, h.data.(0).value)
