lib/metrics/confusion.ml: Format List
