lib/metrics/table.mli:
