(** Detection-quality metrics: the evaluation's FPR and FNR.

    Ground truth and predictions are switch-id lists. Following §VIII:
    FPR is the fraction of good switches incorrectly flagged, FNR the
    fraction of faulty switches that evade detection. *)

type t = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;
  true_negatives : int;
}

val compute : ground_truth:int list -> flagged:int list -> population:int list -> t
(** [population] is the full switch universe; duplicates in inputs are
    ignored. *)

val fpr : t -> float
(** [fp / (fp + tn)]; 0 when no negatives exist. *)

val fnr : t -> float
(** [fn / (fn + tp)]; 0 when no positives exist. *)

val precision : t -> float

val recall : t -> float

val pp : Format.formatter -> t -> unit
