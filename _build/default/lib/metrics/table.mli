(** Minimal fixed-width text tables for the experiment reports. *)

type t

val create : string list -> t
(** Column headers. *)

val add_row : t -> string list -> unit
(** Must match the header arity. *)

val render : t -> string
(** Render with a header separator, columns padded to content width. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_f : float -> string
(** Format a float with 2 decimals. *)

val cell_i : int -> string
