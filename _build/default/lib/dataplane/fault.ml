type effect =
  | Drop_packet
  | Misdirect of int
  | Rewrite of Hspace.Cube.t
  | Detour of int

type activation =
  | Always
  | Intermittent of { period_us : int; duty_us : int; phase_us : int }
  | Random_bursts of { window_us : int; active_ratio : float; seed : int }
  | Targeting of Hspace.Cube.t

type t = { effect : effect; activation : activation }

let make ?(activation = Always) effect = { effect; activation }

let is_active t ~now_us ~header =
  match t.activation with
  | Always -> true
  | Intermittent { period_us; duty_us; phase_us } ->
      if period_us <= 0 then invalid_arg "Fault: non-positive period";
      let x = (now_us - phase_us) mod period_us in
      let x = if x < 0 then x + period_us else x in
      x < duty_us
  | Random_bursts { window_us; active_ratio; seed } ->
      if window_us <= 0 then invalid_arg "Fault: non-positive window";
      let window = now_us / window_us in
      (* One splitmix64 draw keyed on (seed, window): stable per window. *)
      let rng = Sdn_util.Prng.create ((seed * 1_000_003) + window) in
      Sdn_util.Prng.float rng 1.0 < active_ratio
  | Targeting cube -> Hspace.Header.matches header cube

let is_detour t = match t.effect with Detour _ -> true | _ -> false

let pp_effect fmt = function
  | Drop_packet -> Format.pp_print_string fmt "drop"
  | Misdirect p -> Format.fprintf fmt "misdirect:%d" p
  | Rewrite c -> Format.fprintf fmt "rewrite:%a" Hspace.Cube.pp c
  | Detour sw -> Format.fprintf fmt "detour->sw%d" sw

let pp fmt t =
  let pp_activation fmt = function
    | Always -> Format.pp_print_string fmt "always"
    | Intermittent { period_us; duty_us; _ } ->
        Format.fprintf fmt "intermittent(%d/%dus)" duty_us period_us
    | Random_bursts { window_us; active_ratio; _ } ->
        Format.fprintf fmt "bursts(%dus@%.2f)" window_us active_ratio
    | Targeting c -> Format.fprintf fmt "targeting(%a)" Hspace.Cube.pp c
  in
  Format.fprintf fmt "%a [%a]" pp_effect t.effect pp_activation t.activation
