(** Virtual clock for the discrete-event emulation, in microseconds.

    All delays in the evaluation (probe serialization at 250 KB/s,
    per-hop latency, per-round controller overhead) advance this clock;
    intermittent faults read it to decide whether they are active. *)

type t

val create : unit -> t
(** Starts at 0. *)

val now_us : t -> int

val advance_us : t -> int -> unit
(** Raises [Invalid_argument] on negative increments. *)

val reset : t -> unit

val now_seconds : t -> float
