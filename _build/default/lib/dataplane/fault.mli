(** Switch failure model (§III-B).

    A fault attaches to one flow entry and fires when the entry
    processes a packet while the fault is {e active}. Effects mirror the
    paper's taxonomy:

    - [Drop_packet] — the packet disappears;
    - [Misdirect port] — forwarded out the wrong port;
    - [Rewrite set] — the header is overwritten with the given set
      field instead of the entry's own ("modify");
    - [Detour peer] — colluding detour: the packet is tunnelled
      directly to switch [peer] (off the tested path) where normal
      forwarding resumes; if [peer] lies further along the tested path
      the deviation is invisible end-to-end.

    Activations select {e when} the effect fires:

    - [Always] — a persistent fault;
    - [Intermittent] — active while
      [(now − phase) mod period < duty] (the paper's time-selective
      fault, lasting less than a detection round per occurrence);
    - [Targeting cube] — active only for headers inside [cube], a
      strict subset of the entry's match ("targeting fault"). *)

type effect =
  | Drop_packet
  | Misdirect of int
  | Rewrite of Hspace.Cube.t
  | Detour of int

type activation =
  | Always
  | Intermittent of { period_us : int; duty_us : int; phase_us : int }
  | Random_bursts of { window_us : int; active_ratio : float; seed : int }
      (** time is split into [window_us] windows; each window is active
          with probability [active_ratio], decided by a hash of the
          window index and [seed] — pseudo-random burst activity that
          cannot phase-lock with the probing cadence, yet is
          reproducible from the seed *)
  | Targeting of Hspace.Cube.t

type t = { effect : effect; activation : activation }

val make : ?activation:activation -> effect -> t
(** [activation] defaults to [Always]. *)

val is_active : t -> now_us:int -> header:Hspace.Header.t -> bool

val is_detour : t -> bool

val pp : Format.formatter -> t -> unit
