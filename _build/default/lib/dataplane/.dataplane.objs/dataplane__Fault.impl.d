lib/dataplane/fault.ml: Format Hspace Sdn_util
