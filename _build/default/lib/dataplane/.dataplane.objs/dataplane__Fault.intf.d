lib/dataplane/fault.mli: Format Hspace
