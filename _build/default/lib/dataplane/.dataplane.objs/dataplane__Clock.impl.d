lib/dataplane/clock.ml:
