lib/dataplane/emulator.ml: Clock Fault Hashtbl Hspace List Openflow Option
