lib/dataplane/emulator.mli: Clock Fault Hspace Openflow
