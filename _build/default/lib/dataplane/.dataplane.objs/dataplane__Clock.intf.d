lib/dataplane/clock.mli:
