type t = { mutable now : int }

let create () = { now = 0 }

let now_us t = t.now

let advance_us t d =
  if d < 0 then invalid_arg "Clock.advance_us: negative";
  t.now <- t.now + d

let reset t = t.now <- 0

let now_seconds t = float_of_int t.now /. 1e6
