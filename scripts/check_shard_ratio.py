#!/usr/bin/env python3
"""Gate the sharded planner's speedup on a bench capture.

    python3 scripts/check_shard_ratio.py BENCH_10.json --switches 200 --min-ratio 2

Reads plan.full/<n> (flat end-to-end planning: global rule graph + MLPC
cover + unique headers + probes, i.e. Pipeline.create) and
shard.plan/<n> (the sharded equivalent: BFS partition, per-region
graphs and covers, cross-region stitching, headers, probes — i.e.
Shard.Splan.create) from a bench-regress JSON and fails unless
full/sharded >= --min-ratio. This is the ISSUE acceptance bound:
sharded end-to-end planning must beat the flat pipeline by at least 2x
at 200 switches, single-domain. Also asserts that shard.build/1000
is present — the scale the flat path cannot practically run — unless
--no-scale-check. Stdlib only.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("capture", help="bench-regress JSON (e.g. BENCH_10.json)")
    ap.add_argument("--switches", type=int, default=200, metavar="N")
    ap.add_argument("--min-ratio", type=float, default=2.0, metavar="R")
    ap.add_argument(
        "--scale-entry",
        default="shard.build/1000",
        metavar="NAME",
        help="structural-build entry that must exist and have completed "
        "(default shard.build/1000)",
    )
    ap.add_argument(
        "--no-scale-check",
        action="store_true",
        help="skip the --scale-entry presence check (partial captures)",
    )
    args = ap.parse_args()

    with open(args.capture) as fh:
        doc = json.load(fh)
    entries = {}
    for e in doc.get("entries", []):
        ns = e.get("ns", e.get("after_ns"))
        if e.get("name") and ns is not None:
            entries[e["name"]] = float(ns)

    full_name = f"plan.full/{args.switches}"
    shard_name = f"shard.plan/{args.switches}"
    required = [full_name, shard_name]
    if not args.no_scale_check:
        required.append(args.scale_entry)
    missing = [n for n in required if n not in entries]
    if missing:
        sys.exit(f"{args.capture}: missing entries: {', '.join(missing)}")

    full, shard = entries[full_name], entries[shard_name]
    ratio = full / shard
    print(
        f"{full_name}: {full / 1e6:.2f} ms  {shard_name}: {shard / 1e6:.2f} ms"
        f"  ratio: {ratio:.2f}x (required >= {args.min_ratio:.2f}x)"
    )
    if not args.no_scale_check:
        print(f"{args.scale_entry}: {entries[args.scale_entry] / 1e6:.2f} ms (completed)")
    if ratio < args.min_ratio:
        sys.exit(
            f"sharded planning only {ratio:.2f}x faster than the flat pipeline "
            f"at {args.switches} switches (need {args.min_ratio:.2f}x)"
        )
    print("ok")


if __name__ == "__main__":
    main()
