#!/usr/bin/env python3
"""Compare two `bench regress` JSON files and gate on slowdowns.

Usage:
    dune exec bench/main.exe -- regress --switches 16 --out cur1.json
    dune exec bench/main.exe -- regress --switches 16 --out cur2.json
    python3 scripts/compare_bench.py BENCH_3.json cur1.json cur2.json \
        --max-slowdown 1.25 --only-switches 16

The baseline may be either a plain `bench-regress` capture (entries with
"ns") or a `bench-regress-report` (entries with "after_ns"/"ns"); in a
report the after-numbers are the baseline, matching what regress.ml's
own --baseline loader does. When several current files are given, the
per-entry minimum across them is compared — the same noise-robust
protocol the committed baseline was captured with (docs/PERF.md), so
always pass as many current runs as the baseline used. --only-switches
gates only entries whose trailing /<n> matches (micro-kernels carry a
bit-width suffix, e.g. cube.inter/64, and are left ungated — Bechamel
estimates are too machine-sensitive for a hard CI bound). Entries
present in only one file are reported but never fail the gate (workload
sets may differ across machines/scales). When every current capture
reports host_cores: 1, the */par4 entries are not gated either: a
4-domain pool on a single core measures scheduler contention, not the
code, so any par4 ratio against a baseline is a false regression
signal (--gate-entry still force-gates them). Exits non-zero when any
gated entry is slower than baseline by more than --max-slowdown.
Stdlib only.
"""

import argparse
import fnmatch
import json
import sys

SCHEMA_VERSION = 1


def load_entries(path):
    """Entries of a capture, plus the host_cores it reports (None if absent)."""
    with open(path) as fh:
        doc = json.load(fh)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        sys.exit(f"{path}: unsupported schema_version {version} (expected {SCHEMA_VERSION})")
    entries = {}
    for e in doc.get("entries", []):
        ns = e.get("ns", e.get("after_ns"))
        if e.get("name") is None or ns is None:
            sys.exit(f"{path}: malformed entry {e!r}")
        entries[e["name"]] = float(ns)
    if not entries:
        sys.exit(f"{path}: no entries")
    return entries, doc.get("host_cores")


def scale_of(name):
    """Trailing /<switches> suffix of an end-to-end entry, None for micros.

    A variant suffix like /par4 (the 4-domain pool entries) is stripped
    first, so rulegraph.spaces/16/par4 gates with the /16 scale."""
    if name.endswith("/par4"):
        name = name[: -len("/par4")]
    _, _, suffix = name.rpartition("/")
    return int(suffix) if suffix.isdigit() else None


def pretty_ns(ns):
    if ns > 1e9:
        return f"{ns / 1e9:.2f} s"
    if ns > 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns > 1e3:
        return f"{ns / 1e3:.2f} us"
    return f"{ns:.0f} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed baseline (BENCH_3.json)")
    ap.add_argument(
        "current",
        nargs="+",
        help="freshly measured regress JSON (several files are min-merged per entry)",
    )
    ap.add_argument(
        "--max-slowdown",
        type=float,
        default=1.25,
        metavar="RATIO",
        help="fail when current/baseline exceeds RATIO (default 1.25)",
    )
    ap.add_argument(
        "--only-switches",
        type=int,
        default=None,
        metavar="N",
        help="gate only entries with a trailing /N scale suffix",
    )
    ap.add_argument(
        "--gate-entry",
        action="append",
        default=[],
        metavar="GLOB",
        help="force-gate entries matching GLOB even when --only-switches "
        "excludes them (e.g. cube.inter/64 to hold the interning fix)",
    )
    ap.add_argument(
        "--write-merged",
        default=None,
        metavar="PATH",
        help="write the min-merged current entries as a bench-regress JSON "
        "(with before_ns/speedup against the baseline) — the min-of-N "
        "capture protocol for committed BENCH_<n>.json files",
    )
    args = ap.parse_args()

    base, _ = load_entries(args.baseline)
    cur = {}
    cur_cores = []
    for path in args.current:
        entries, cores = load_entries(path)
        cur_cores.append(cores)
        for name, ns in entries.items():
            cur[name] = min(ns, cur.get(name, float("inf")))
    # par4 numbers only mean anything when the candidate host actually
    # has the cores; a capture missing host_cores is assumed multi-core
    # (old-format captures predate the field).
    single_core = all(c == 1 for c in cur_cores) and cur_cores != []
    if single_core:
        print("candidate reports host_cores: 1 — */par4 entries not gated")

    if args.write_merged:
        entries = []
        for name in sorted(cur):
            e = {"name": name, "ns": cur[name]}
            if name in base:
                e["before_ns"] = base[name]
                e["speedup"] = base[name] / cur[name]
            entries.append(e)
        with open(args.current[0]) as fh:
            first = json.load(fh)
        merged = {
            "schema_version": SCHEMA_VERSION,
            "kind": "bench-regress-report",
            "workload": first.get("workload", ""),
            "switches": first.get("switches", []),
            "host_cores": first.get("host_cores"),
            "merged_of": len(args.current),
            "entries": entries,
        }
        with open(args.write_merged, "w") as fh:
            json.dump(merged, fh, indent=1)
            fh.write("\n")
        print(f"wrote min-of-{len(args.current)} merge to {args.write_merged}")

    failures = []
    print(f"{'entry':<28} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for name in sorted(set(base) | set(cur)):
        if name not in base or name not in cur:
            where = "baseline" if name in base else "current"
            print(f"{name:<28} {'(only in ' + where + ')':>33}")
            continue
        ratio = cur[name] / base[name]
        scale = scale_of(name)
        forced = any(fnmatch.fnmatch(name, g) for g in args.gate_entry)
        gated = (
            args.only_switches is None
            or scale is None
            or scale == args.only_switches
            or forced
        )
        if single_core and name.endswith("/par4") and not forced:
            gated = False
        verdict = ""
        if gated and ratio > args.max_slowdown:
            failures.append(name)
            verdict = "  FAIL"
        elif not gated:
            verdict = "  (not gated)"
        print(
            f"{name:<28} {pretty_ns(base[name]):>12} {pretty_ns(cur[name]):>12}"
            f" {ratio:>6.2f}x{verdict}"
        )

    if failures:
        sys.exit(
            f"{len(failures)} entr{'y' if len(failures) == 1 else 'ies'} regressed "
            f"beyond {args.max_slowdown:.2f}x: {', '.join(failures)}"
        )
    print(f"ok: no entry slower than {args.max_slowdown:.2f}x baseline")


if __name__ == "__main__":
    main()
