#!/usr/bin/env python3
"""Unit tests for compare_bench.py's gating, in particular the
host_cores: 1 rule: a candidate captured on a single core must not
fail the gate on */par4 entries (a 4-domain pool on one core measures
scheduler contention, not the code), while serial entries keep gating
and --gate-entry still force-gates par4. Stdlib only:

    python3 scripts/test_compare_bench.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "compare_bench.py")


def capture(entries, host_cores):
    doc = {
        "schema_version": 1,
        "kind": "bench-regress",
        "workload": "synthetic",
        "switches": [16],
        "entries": [{"name": n, "ns": ns} for n, ns in entries.items()],
    }
    if host_cores is not None:
        doc["host_cores"] = host_cores
    fd, path = tempfile.mkstemp(suffix=".json")
    with os.fdopen(fd, "w") as fh:
        json.dump(doc, fh)
    return path


def run(baseline, current, *extra):
    proc = subprocess.run(
        [sys.executable, SCRIPT, baseline, current, *extra],
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout + proc.stderr


BASE = {
    "mlpc.solve/16": 100e6,
    "mlpc.solve/16/par4": 40e6,
    "verify.closure/16": 50e6,
}


class TestSingleCorePar4Skip(unittest.TestCase):
    def setUp(self):
        self.paths = []

    def tearDown(self):
        for p in self.paths:
            os.unlink(p)

    def cap(self, entries, host_cores):
        p = capture(entries, host_cores)
        self.paths.append(p)
        return p

    def test_par4_regression_skipped_on_one_core(self):
        # par4 3x slower, but the candidate host has one core: pass.
        base = self.cap(BASE, 1)
        cur = self.cap({**BASE, "mlpc.solve/16/par4": 120e6}, 1)
        code, out = run(base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("host_cores: 1", out)
        self.assertIn("(not gated)", out)

    def test_par4_regression_fails_on_multicore(self):
        # Same regression with 4 cores: the gate must trip.
        base = self.cap(BASE, 1)
        cur = self.cap({**BASE, "mlpc.solve/16/par4": 120e6}, 4)
        code, out = run(base, cur)
        self.assertNotEqual(code, 0, out)
        self.assertIn("mlpc.solve/16/par4", out)

    def test_serial_regression_still_fails_on_one_core(self):
        # One core skips par4 only — serial entries keep gating.
        base = self.cap(BASE, 1)
        cur = self.cap({**BASE, "verify.closure/16": 200e6}, 1)
        code, out = run(base, cur)
        self.assertNotEqual(code, 0, out)
        self.assertIn("verify.closure/16", out)

    def test_gate_entry_forces_par4_even_on_one_core(self):
        base = self.cap(BASE, 1)
        cur = self.cap({**BASE, "mlpc.solve/16/par4": 120e6}, 1)
        code, out = run(base, cur, "--gate-entry", "*/par4")
        self.assertNotEqual(code, 0, out)

    def test_missing_host_cores_is_treated_as_multicore(self):
        # Old-format captures predate the field; don't silently skip.
        base = self.cap(BASE, 1)
        cur = self.cap({**BASE, "mlpc.solve/16/par4": 120e6}, None)
        code, out = run(base, cur)
        self.assertNotEqual(code, 0, out)

    def test_all_current_files_must_be_one_core(self):
        # Min-merge of a 1-core and a 4-core capture: par4 stays gated.
        base = self.cap(BASE, 1)
        cur1 = self.cap({**BASE, "mlpc.solve/16/par4": 120e6}, 1)
        cur2 = self.cap({**BASE, "mlpc.solve/16/par4": 130e6}, 4)
        code, out = run(base, cur1, cur2)
        self.assertNotEqual(code, 0, out)

    def test_clean_run_passes(self):
        base = self.cap(BASE, 1)
        cur = self.cap(BASE, 1)
        code, out = run(base, cur)
        self.assertEqual(code, 0, out)


class TestOneSidedEntries(unittest.TestCase):
    """Entries present in only one file are reported, never gated: a
    fresh bench entry (shard.plan/200, rulegraph.build/1000, ...) must
    not fail CI the day it is introduced, before the committed baseline
    has been recaptured — and a baseline-only entry must not fail a
    candidate measured at a smaller --switches subset."""

    def setUp(self):
        self.paths = []

    def tearDown(self):
        for p in self.paths:
            os.unlink(p)

    def cap(self, entries, host_cores=4):
        p = capture(entries, host_cores)
        self.paths.append(p)
        return p

    def test_candidate_only_entry_passes(self):
        base = self.cap(BASE)
        cur = self.cap({**BASE, "shard.plan/200": 900e6, "shard.build/1000": 1.3e9})
        code, out = run(base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("(only in current)", out)

    def test_candidate_only_entry_passes_even_if_huge(self):
        # No baseline number means no ratio — magnitude is irrelevant.
        base = self.cap(BASE)
        cur = self.cap({**BASE, "plan.full/1000": 1e15})
        code, out = run(base, cur)
        self.assertEqual(code, 0, out)

    def test_candidate_only_entry_passes_under_only_switches(self):
        base = self.cap(BASE)
        cur = self.cap({**BASE, "shard.plan/200": 900e6})
        code, out = run(base, cur, "--only-switches", "200")
        self.assertEqual(code, 0, out)

    def test_baseline_only_entry_passes(self):
        # Candidate measured at a subset of the baseline's scales.
        base = self.cap({**BASE, "plan.full/200": 2.6e9})
        cur = self.cap(BASE)
        code, out = run(base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("(only in baseline)", out)

    def test_shared_entries_still_gate_alongside_one_sided(self):
        # Tolerating new names must not blunt the gate on shared ones.
        base = self.cap(BASE)
        cur = self.cap({**BASE, "verify.closure/16": 200e6, "shard.plan/200": 900e6})
        code, out = run(base, cur)
        self.assertNotEqual(code, 0, out)
        self.assertIn("verify.closure/16", out)


if __name__ == "__main__":
    unittest.main()
