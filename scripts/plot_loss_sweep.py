#!/usr/bin/env python3
"""Consume the loss-sweep experiment's versioned JSON and render a table
plus an ASCII plot of detection time vs loss rate.

Usage:
    sdnprobe experiment loss-sweep     # with SDNPROBE_LOSS_SWEEP_JSON=sweep.json
    python3 scripts/plot_loss_sweep.py sweep.json [--tsv out.tsv]

Exits non-zero on an unsupported schema_version, a missed localization,
or any pure-loss false positive (so CI can gate on it). Stdlib only.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        sys.exit(f"unsupported sweep schema_version {version} (expected {SCHEMA_VERSION})")
    for point in doc["points"]:
        report = point["report"]
        if report.get("schema_version") != SCHEMA_VERSION:
            sys.exit(f"unsupported report schema_version {report.get('schema_version')}")
    return doc


def table(doc):
    rows = [("loss%", "scheme", "exact", "detect(s)", "rounds", "retx", "pure-loss FPs")]
    for p in doc["points"]:
        r = p["report"]
        rows.append(
            (
                f"{p['loss'] * 100:.1f}",
                p["scheme"],
                "yes" if p["exact"] else "NO",
                f"{p['detect_s']:.2f}" if p["detect_s"] is not None else "miss",
                str(r["rounds"]),
                str(r["retransmissions"]),
                str(p["pure_loss_false_positives"]),
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    for i, row in enumerate(rows):
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if i == 0:
            print("  ".join("-" * w for w in widths))


def ascii_plot(doc, width=60, height=12):
    """Detection time vs loss, one glyph per scheme."""
    series = {}
    for p in doc["points"]:
        if p["detect_s"] is not None:
            series.setdefault(p["scheme"], []).append((p["loss"], p["detect_s"]))
    if not series:
        return
    glyphs = {}
    for i, name in enumerate(sorted(series)):
        glyphs[name] = "ox+*"[i % 4]
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x0, x1 = min(xs), max(xs) or 1e-9
    y1 = max(ys) or 1e-9
    grid = [[" "] * width for _ in range(height)]
    for name, pts in series.items():
        for x, y in pts:
            col = 0 if x1 == x0 else round((x - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - round(y / y1 * (height - 1))
            grid[row][col] = glyphs[name]
    print(f"\ndetection time (0..{y1:.1f}s) vs loss ({x0 * 100:.1f}%..{x1 * 100:.1f}%)")
    for row in grid:
        print("  |" + "".join(row))
    print("  +" + "-" * width)
    print("  " + "   ".join(f"{g} {name}" for name, g in sorted(glyphs.items())))


def write_tsv(doc, path):
    with open(path, "w") as fh:
        fh.write("loss\tscheme\texact\tdetect_s\trounds\tretransmissions\tpure_loss_fps\n")
        for p in doc["points"]:
            r = p["report"]
            detect = "" if p["detect_s"] is None else f"{p['detect_s']:.6f}"
            fh.write(
                f"{p['loss']:.4f}\t{p['scheme']}\t{int(p['exact'])}\t{detect}"
                f"\t{r['rounds']}\t{r['retransmissions']}\t{p['pure_loss_false_positives']}\n"
            )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("sweep", help="JSON written by the loss-sweep experiment")
    ap.add_argument("--tsv", help="also write a gnuplot-ready TSV")
    args = ap.parse_args()

    doc = load(args.sweep)
    print(f"loss sweep: {doc['n_switches']} switches, threshold {doc['threshold']}")
    table(doc)
    ascii_plot(doc)
    if args.tsv:
        write_tsv(doc, args.tsv)
        print(f"\nTSV written to {args.tsv}")

    missed = [p for p in doc["points"] if not p["exact"]]
    fps = sum(p["pure_loss_false_positives"] for p in doc["points"])
    if missed:
        sys.exit(f"{len(missed)} point(s) missed exact localization")
    if fps:
        sys.exit(f"{fps} pure-loss false positive(s) at threshold {doc['threshold']}")


if __name__ == "__main__":
    main()
