#!/usr/bin/env python3
"""Gate the planner's incremental speedup on a bench capture.

    python3 scripts/check_plan_ratio.py BENCH_7.json --switches 50 --min-ratio 10

Reads plan.full/<n> (full static plan from scratch: rule graph + MLPC
cover + unique headers + probes, i.e. Pipeline.create) and
plan.edit/<n> (amortized per-edit cost of Pipeline.apply: incremental
rule-graph update + warm-cache cover re-solve + memoized header
re-assignment, measured over multi-edit batches) from a bench-regress
JSON and fails unless full/edit >= --min-ratio. This is the ISSUE
acceptance bound: amortized per-edit re-planning must be at least 10x
faster than a full re-plan at 50 switches. Stdlib only.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("capture", help="bench-regress JSON (e.g. BENCH_7.json)")
    ap.add_argument("--switches", type=int, default=50, metavar="N")
    ap.add_argument("--min-ratio", type=float, default=10.0, metavar="R")
    args = ap.parse_args()

    with open(args.capture) as fh:
        doc = json.load(fh)
    entries = {}
    for e in doc.get("entries", []):
        ns = e.get("ns", e.get("after_ns"))
        if e.get("name") and ns is not None:
            entries[e["name"]] = float(ns)

    full_name = f"plan.full/{args.switches}"
    edit_name = f"plan.edit/{args.switches}"
    missing = [n for n in (full_name, edit_name) if n not in entries]
    if missing:
        sys.exit(f"{args.capture}: missing entries: {', '.join(missing)}")

    full, edit = entries[full_name], entries[edit_name]
    ratio = full / edit
    print(
        f"{full_name}: {full / 1e6:.2f} ms  {edit_name}: {edit / 1e6:.2f} ms"
        f"  ratio: {ratio:.1f}x (required >= {args.min_ratio:.1f}x)"
    )
    if ratio < args.min_ratio:
        sys.exit(
            f"incremental re-planning only {ratio:.1f}x faster than a full "
            f"re-plan at {args.switches} switches (need {args.min_ratio:.1f}x)"
        )
    print("ok")


if __name__ == "__main__":
    main()
