#!/usr/bin/env python3
"""Gate the verifier's incremental speedup on a bench capture.

    python3 scripts/check_verify_ratio.py BENCH_6.json --switches 50 --min-ratio 10

Reads verify.closure/<n> (full recompute: plumbing + closure +
invariant checks from scratch) and verify.edit/<n> (amortized
per-edit cost: patch + delta re-propagation + re-check after a single
rule remove/re-add) from a bench-regress JSON and fails unless
closure/edit >= --min-ratio. This is the ISSUE acceptance bound: after
one rule edit, re-verification must be at least 10x faster than full
recomputation at 50 switches. Stdlib only.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("capture", help="bench-regress JSON (e.g. BENCH_6.json)")
    ap.add_argument("--switches", type=int, default=50, metavar="N")
    ap.add_argument("--min-ratio", type=float, default=10.0, metavar="R")
    args = ap.parse_args()

    with open(args.capture) as fh:
        doc = json.load(fh)
    entries = {}
    for e in doc.get("entries", []):
        ns = e.get("ns", e.get("after_ns"))
        if e.get("name") and ns is not None:
            entries[e["name"]] = float(ns)

    full_name = f"verify.closure/{args.switches}"
    edit_name = f"verify.edit/{args.switches}"
    missing = [n for n in (full_name, edit_name) if n not in entries]
    if missing:
        sys.exit(f"{args.capture}: missing entries: {', '.join(missing)}")

    full, edit = entries[full_name], entries[edit_name]
    ratio = full / edit
    print(
        f"{full_name}: {full / 1e6:.2f} ms  {edit_name}: {edit / 1e6:.2f} ms"
        f"  ratio: {ratio:.1f}x (required >= {args.min_ratio:.1f}x)"
    )
    if ratio < args.min_ratio:
        sys.exit(
            f"incremental re-verification only {ratio:.1f}x faster than full "
            f"recompute at {args.switches} switches (need {args.min_ratio:.1f}x)"
        )
    print("ok")


if __name__ == "__main__":
    main()
